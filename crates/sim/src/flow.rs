//! The shared credit ledger: per-link credit windows, sender-side pending
//! queues, and the queue-depth / stall-time gauges.
//!
//! Both runtimes implement credit-based flow control through this one
//! structure — the deterministic kernel owns a `FlowControl` directly and
//! drives it from its event loop; the thread engine keeps one behind the
//! link table's lock and drives it from the actor threads. The semantics
//! are therefore identical by construction:
//!
//! * **admit** — a data message bound for a directed link either consumes a
//!   credit (delivered) or joins the link's FIFO pending queue (stalled);
//! * **replenish** — the receiver consumed one delivery (at its *modeled*
//!   CPU completion, not its arrival): the freed credit immediately
//!   releases the oldest pending message, if any, keeping the link at its
//!   window;
//! * **reset** — a crashed endpoint purges its links' state (pending
//!   messages are lost like in-flight segments of a broken connection, and
//!   credits return to the full window for the restart).
//!
//! Only data messages are flow-controlled (see `ShardMsg::credit_controlled`);
//! control traffic always passes, so a stalled link still heartbeats and a
//! backpressured peer is never mistaken for a dead one.

use borealis_types::{CreditPolicy, Duration, FlowGauges, NodeId, Time};
use std::collections::{HashMap, VecDeque};

/// Per-directed-link credit state.
#[derive(Debug)]
struct LinkFlow<M> {
    /// Admitted, not yet consumed deliveries.
    inflight: u32,
    /// Sends awaiting credit, oldest first.
    queue: VecDeque<M>,
    /// When the current stall episode began (queue became non-empty).
    stalled_since: Option<Time>,
}

impl<M> Default for LinkFlow<M> {
    fn default() -> Self {
        LinkFlow {
            inflight: 0,
            queue: VecDeque::new(),
            stalled_since: None,
        }
    }
}

/// The credit ledger of one running deployment.
#[derive(Debug)]
pub struct FlowControl<M> {
    policy: CreditPolicy,
    links: HashMap<(NodeId, NodeId), LinkFlow<M>>,
    gauges: FlowGauges,
}

impl<M> Default for FlowControl<M> {
    fn default() -> Self {
        FlowControl::new(CreditPolicy::Unbounded)
    }
}

impl<M> FlowControl<M> {
    /// A ledger under the given policy.
    pub fn new(policy: CreditPolicy) -> FlowControl<M> {
        FlowControl {
            policy,
            links: HashMap::new(),
            gauges: FlowGauges::default(),
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> CreditPolicy {
        self.policy
    }

    /// Replaces the policy (deployment wiring; call before traffic flows).
    pub fn set_policy(&mut self, policy: CreditPolicy) {
        self.policy = policy;
    }

    /// Current gauges snapshot.
    pub fn gauges(&self) -> FlowGauges {
        self.gauges
    }

    /// True when `msg` must pass through this ledger — THE tracking rule
    /// of the flow-control layer (a credit-controlled message under a
    /// tracking policy), shared by the kernel's event paths and the core
    /// `Transport` impl. The thread engine's `LinkTable::tracks` mirrors
    /// it against a lock-free policy copy.
    pub fn tracks(&self, msg: &M) -> bool
    where
        M: crate::kernel::ShardMsg,
    {
        self.policy.is_tracking() && msg.credit_controlled()
    }

    /// Admits a data message to the directed link `from → to`.
    ///
    /// Returns the message when it may be handed to the link now (credit
    /// consumed); `None` means it was queued at the sender awaiting credit.
    /// Under a non-tracking policy this is the identity function.
    pub fn admit(&mut self, from: NodeId, to: NodeId, msg: M, now: Time) -> Option<M> {
        if !self.policy.is_tracking() {
            return Some(msg);
        }
        let window = self.policy.window();
        let link = self.links.entry((from, to)).or_default();
        let open = match window {
            Some(w) => link.queue.is_empty() && link.inflight < w,
            None => true, // Metered: account, never stall.
        };
        if open {
            link.inflight += 1;
            self.gauges.delivered += 1;
            self.gauges.inflight_now += 1;
            self.gauges.inflight_peak = self.gauges.inflight_peak.max(link.inflight as u64);
            Some(msg)
        } else {
            if link.queue.is_empty() {
                link.stalled_since = Some(now);
                self.gauges.stalls += 1;
            }
            link.queue.push_back(msg);
            self.gauges.queued += 1;
            self.gauges.queued_now += 1;
            self.gauges.queued_peak = self.gauges.queued_peak.max(link.queue.len() as u64);
            None
        }
    }

    /// One delivery on `from → to` was consumed by the receiver: the freed
    /// credit releases the oldest pending message, if any (its credit stays
    /// consumed by the released message, keeping the link at its window).
    pub fn replenish(&mut self, from: NodeId, to: NodeId, now: Time) -> Option<M> {
        if !self.policy.is_tracking() {
            return None;
        }
        let link = self.links.get_mut(&(from, to))?;
        match link.queue.pop_front() {
            Some(msg) => {
                // in-flight count unchanged: one consumed, one released.
                self.gauges.released += 1;
                self.gauges.queued_now = self.gauges.queued_now.saturating_sub(1);
                if link.queue.is_empty() {
                    if let Some(since) = link.stalled_since.take() {
                        self.gauges.stall_time = self.gauges.stall_time + now.since(since);
                    }
                }
                Some(msg)
            }
            None => {
                // A credit can come back for a link that no longer has
                // in-flight deliveries — a crash purge (`reset_node`) ran
                // while the consumption was pending. The link count and
                // the global gauge must saturate *together*, or the gauge
                // drifts below the actual total across the other links.
                if link.inflight > 0 {
                    link.inflight -= 1;
                    self.gauges.inflight_now -= 1;
                }
                None
            }
        }
    }

    /// Continuous stall duration of `from → to` — how long its pending
    /// queue has been non-empty ([`Duration::ZERO`] when credit is
    /// flowing).
    pub fn stalled_for(&self, from: NodeId, to: NodeId, now: Time) -> Duration {
        self.links
            .get(&(from, to))
            .and_then(|l| l.stalled_since)
            .map_or(Duration::ZERO, |since| now.since(since))
    }

    /// Purges every link touching a crashed node: pending messages are lost
    /// (returned count; the caller records them as delivery drops) and
    /// credits reset to the full window for the restart.
    pub fn reset_node(&mut self, n: NodeId, now: Time) -> u64 {
        let mut purged = 0;
        for (&(_, _), link) in self
            .links
            .iter_mut()
            .filter(|(&(a, b), _)| a == n || b == n)
        {
            purged += link.queue.len() as u64;
            self.gauges.queued_now = self
                .gauges
                .queued_now
                .saturating_sub(link.queue.len() as u64);
            self.gauges.inflight_now = self
                .gauges
                .inflight_now
                .saturating_sub(link.inflight as u64);
            link.queue.clear();
            link.inflight = 0;
            if let Some(since) = link.stalled_since.take() {
                self.gauges.stall_time = self.gauges.stall_time + now.since(since);
            }
        }
        self.gauges.purged += purged;
        purged
    }

    /// Asserts the gauge/ledger consistency invariants: the `queued_now`
    /// and `inflight_now` gauges must equal the actual totals across
    /// links, no link's in-flight count may exceed the policy window, and
    /// a non-empty pending queue must have an open stall episode. Called
    /// by the thread engine's `LinkTable` after every ledger operation in
    /// debug builds, and by the model tests as the checked invariant.
    pub fn check_invariants(&self) {
        let queued: u64 = self.links.values().map(|l| l.queue.len() as u64).sum();
        assert_eq!(
            self.gauges.queued_now, queued,
            "queued_now gauge must equal the actual pending-queue total"
        );
        let inflight: u64 = self.links.values().map(|l| l.inflight as u64).sum();
        assert_eq!(
            self.gauges.inflight_now, inflight,
            "inflight_now gauge must equal the actual in-flight total"
        );
        if let Some(w) = self.policy.window() {
            for (&(a, b), l) in &self.links {
                assert!(
                    l.inflight <= w,
                    "link {a:?}→{b:?} exceeds its credit window: {} > {w}",
                    l.inflight
                );
                assert!(
                    l.queue.is_empty() || l.stalled_since.is_some(),
                    "link {a:?}→{b:?} has pending sends but no stall episode"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);

    #[test]
    fn unbounded_is_identity() {
        let mut f: FlowControl<u32> = FlowControl::new(CreditPolicy::Unbounded);
        for i in 0..100 {
            assert_eq!(f.admit(A, B, i, Time::ZERO), Some(i));
        }
        assert_eq!(f.gauges(), FlowGauges::default());
        assert_eq!(f.replenish(A, B, Time::ZERO), None);
    }

    #[test]
    fn window_gates_and_replenish_releases_fifo() {
        let mut f: FlowControl<u32> = FlowControl::new(CreditPolicy::Window(2));
        assert_eq!(f.admit(A, B, 1, Time::ZERO), Some(1));
        assert_eq!(f.admit(A, B, 2, Time::ZERO), Some(2));
        assert_eq!(f.admit(A, B, 3, Time::from_millis(5)), None);
        assert_eq!(f.admit(A, B, 4, Time::from_millis(6)), None);
        let g = f.gauges();
        assert_eq!((g.delivered, g.queued, g.queued_now), (2, 2, 2));
        assert_eq!(g.inflight_peak, 2);
        assert_eq!(g.stalls, 1, "one stall episode");

        // Consuming 1 releases 3 (credit stays consumed); consuming 2
        // releases 4; the next two replenishes free the window.
        assert_eq!(f.replenish(A, B, Time::from_millis(10)), Some(3));
        assert_eq!(f.replenish(A, B, Time::from_millis(20)), Some(4));
        assert_eq!(f.gauges().stall_time, Duration::from_millis(15));
        assert_eq!(f.replenish(A, B, Time::from_millis(30)), None);
        assert_eq!(f.replenish(A, B, Time::from_millis(30)), None);
        assert_eq!(f.gauges().inflight_now, 0);
        assert_eq!(f.admit(A, B, 5, Time::from_millis(31)), Some(5));
    }

    #[test]
    fn queue_order_beats_fresh_credit() {
        // With the queue non-empty, a new send must join the queue even if
        // a credit just freed — FIFO per link, no overtaking.
        let mut f: FlowControl<u32> = FlowControl::new(CreditPolicy::Window(1));
        assert_eq!(f.admit(A, B, 1, Time::ZERO), Some(1));
        assert_eq!(f.admit(A, B, 2, Time::ZERO), None);
        assert_eq!(f.admit(A, B, 3, Time::ZERO), None);
        assert_eq!(f.replenish(A, B, Time::ZERO), Some(2));
        assert_eq!(f.admit(A, B, 4, Time::ZERO), None, "3 still queued");
        assert_eq!(f.replenish(A, B, Time::ZERO), Some(3));
        assert_eq!(f.replenish(A, B, Time::ZERO), Some(4));
    }

    #[test]
    fn links_are_independent() {
        let mut f: FlowControl<u32> = FlowControl::new(CreditPolicy::Window(1));
        assert_eq!(f.admit(A, B, 1, Time::ZERO), Some(1));
        assert_eq!(f.admit(B, A, 2, Time::ZERO), Some(2), "reverse direction");
        assert_eq!(f.admit(A, NodeId(9), 3, Time::ZERO), Some(3));
        assert_eq!(f.admit(A, B, 4, Time::ZERO), None);
    }

    #[test]
    fn metered_accounts_without_stalling() {
        let mut f: FlowControl<u32> = FlowControl::new(CreditPolicy::Metered);
        for i in 0..50 {
            assert_eq!(f.admit(A, B, i, Time::ZERO), Some(i));
        }
        assert_eq!(f.gauges().inflight_peak, 50);
        assert_eq!(f.gauges().queued, 0);
        assert_eq!(f.replenish(A, B, Time::ZERO), None);
        assert_eq!(f.gauges().inflight_now, 49);
    }

    #[test]
    fn node_reset_purges_and_restores_credits() {
        let mut f: FlowControl<u32> = FlowControl::new(CreditPolicy::Window(1));
        assert_eq!(f.admit(A, B, 1, Time::ZERO), Some(1));
        assert_eq!(f.admit(A, B, 2, Time::ZERO), None);
        assert_eq!(f.reset_node(B, Time::from_millis(4)), 1, "queued 2 purged");
        assert_eq!(f.gauges().purged, 1);
        assert_eq!(f.gauges().inflight_now, 0);
        assert_eq!(f.stalled_for(A, B, Time::from_millis(9)), Duration::ZERO);
        // Fresh window after the crash.
        assert_eq!(f.admit(A, B, 5, Time::from_millis(10)), Some(5));
    }

    #[test]
    fn stalled_for_reports_continuous_stall() {
        let mut f: FlowControl<u32> = FlowControl::new(CreditPolicy::Window(1));
        assert_eq!(f.stalled_for(A, B, Time::from_millis(1)), Duration::ZERO);
        f.admit(A, B, 1, Time::ZERO);
        f.admit(A, B, 2, Time::from_millis(10));
        assert_eq!(
            f.stalled_for(A, B, Time::from_millis(25)),
            Duration::from_millis(15)
        );
        f.replenish(A, B, Time::from_millis(30));
        assert_eq!(f.stalled_for(A, B, Time::from_millis(40)), Duration::ZERO);
    }
}
