//! Failure injection events (§2.2's failure model).
//!
//! DPC handles crash failures of processing nodes and network failures that
//! "cause message losses and delays, preventing any subset of nodes from
//! communicating with one another, possibly partitioning the system". The
//! simulator scripts those as timed [`FaultEvent`]s.

use borealis_types::NodeId;

/// A scripted fault (or heal) applied to the simulated system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// The link between two endpoints stops delivering messages (both
    /// directions). Models network failures and, pairwise, partitions.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The link heals.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Crash failure: the node stops sending, receiving, and firing timers.
    /// Volatile state is lost (§2.2: "buffers are lost when a processing
    /// node fails").
    NodeDown(NodeId),
    /// The node restarts (empty state; see §4.5 failed-node recovery).
    NodeUp(NodeId),
    /// An application-defined fault delivered to one actor's `on_fault`
    /// hook. Used for source-level scripting: muting a source's output or
    /// just its boundary tuples (the §6.2 failure mode).
    Custom {
        /// The actor the fault applies to.
        target: NodeId,
        /// Application-defined discriminator.
        tag: u64,
    },
}

impl FaultEvent {
    /// Actors that must be notified of this fault.
    pub fn notifies(&self) -> Vec<NodeId> {
        match self {
            FaultEvent::LinkDown { a, b } | FaultEvent::LinkUp { a, b } => vec![*a, *b],
            FaultEvent::NodeDown(n) | FaultEvent::NodeUp(n) => vec![*n],
            FaultEvent::Custom { target, .. } => vec![*target],
        }
    }
}
