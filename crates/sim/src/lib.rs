//! # borealis-sim
//!
//! A deterministic discrete-event simulator: virtual clock, totally ordered
//! event queue, seeded RNG, and a simulated network with reliable in-order
//! links, per-pair latencies, and scripted link/node/custom faults — the
//! §2.2 system model of the paper, reproducible on one machine.
//!
//! The DPC protocol itself (`borealis-dpc`) is written against this crate's
//! [`Actor`] interface; experiments script [`FaultEvent`]s to recreate every
//! failure scenario of the paper's evaluation.

#![warn(missing_docs)]

pub mod fault;
pub mod flow;
pub mod kernel;
pub mod net;

pub use fault::FaultEvent;
pub use flow::FlowControl;
pub use kernel::{Actor, Ctx, ShardMsg, Sim, SimStats};
pub use net::Network;
