//! # borealis-bench
//!
//! `cargo bench` targets reproducing every table and figure of the paper's
//! evaluation, plus Criterion microbenchmarks of the engine itself. Each
//! figure/table bench prints the same rows/series the paper reports; see
//! `EXPERIMENTS.md` at the workspace root for the paper-vs-measured record.

#![warn(missing_docs)]

/// Paper reference for each bench target, for `-h` style discovery.
pub const TARGETS: &[(&str, &str)] = &[
    (
        "fig11_simultaneous_failures",
        "Fig. 11(a)/(b): eventual consistency traces",
    ),
    (
        "table3_procnew_vs_duration",
        "Table III: Procnew vs failure duration",
    ),
    (
        "fig13_policy_variants",
        "Fig. 13: six availability/consistency policies",
    ),
    ("fig15_chain_latency", "Fig. 15: Procnew vs chain depth"),
    (
        "fig16_chain_tentative",
        "Fig. 16: Ntentative vs chain depth (short failures)",
    ),
    (
        "fig18_long_failure_chain",
        "Fig. 18: Ntentative vs chain depth (60 s failure)",
    ),
    (
        "fig19_20_delay_assignment",
        "Figs. 19/20: uniform vs full delay assignment",
    ),
    (
        "table4_bucket_size_overhead",
        "Table IV: serialization latency vs bucket size",
    ),
    (
        "table5_boundary_interval_overhead",
        "Table V: latency vs boundary interval",
    ),
    ("switchover_latency", "§5.1: upstream switchover gap"),
    (
        "micro",
        "Criterion microbenchmarks of operators/engine/simulator",
    ),
];
