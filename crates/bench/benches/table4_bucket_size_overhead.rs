//! Table IV: serialization latency overhead vs SUnion bucket size (10 ms
//! boundary interval; the 0 column is a plain Union with no boundaries).
//! Paper: average latency grows proportionally to the bucket size.

use borealis_workloads::{render_overhead, run_table4};

fn main() {
    let rows = run_table4(&[0, 10, 50, 100, 150, 200, 300, 500]);
    println!(
        "{}",
        render_overhead(
            "Table IV: per-tuple latency vs bucket size (boundary interval 10 ms)",
            "bucket(ms)",
            &rows,
        )
    );
    assert!(
        rows.windows(2).all(|w| w[0].avg <= w[1].avg),
        "latency must grow with bucket size"
    );
}
