//! Criterion microbenchmarks (§7 runtime-overhead angle, measured in real
//! time): operator throughput, SUnion serialization cost, fragment
//! checkpoint/restore cost, and end-to-end simulated-cluster throughput.

use borealis_diagram::{plan, Deployment, DiagramBuilder, DpcConfig, LogicalOp};
use borealis_dpc::{BufferPolicy, OutputBuffer};
use borealis_engine::Fragment;
use borealis_ops::{
    AggFn, Aggregate, AggregateSpec, BatchEmitter, Filter, Operator, SUnion, SUnionConfig,
};
use borealis_types::{Duration, Expr, Time, Tuple, TupleBatch, TupleId, Value};
use borealis_workloads::{single_node_system, SingleNodeOptions};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn tuples(n: u64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::insertion(
                TupleId(i + 1),
                Time::from_millis(i),
                vec![Value::Int(i as i64)],
            )
        })
        .collect()
}

fn bench_filter(c: &mut Criterion) {
    let input = tuples(1024);
    let mut g = c.benchmark_group("operators");
    g.throughput(Throughput::Elements(input.len() as u64));
    g.bench_function("filter_1k", |b| {
        let mut f = Filter::new(Expr::gt(Expr::field(0), Expr::int(100)));
        let mut out = BatchEmitter::new();
        b.iter(|| {
            for t in &input {
                f.process(0, t, Time::ZERO, &mut out);
            }
            let _ = out.take();
        });
    });
    g.bench_function("aggregate_1k", |b| {
        let mut a = Aggregate::new(AggregateSpec {
            window: Duration::from_millis(100),
            slide: Duration::from_millis(100),
            group_by: vec![],
            aggs: vec![AggFn::count(), AggFn::sum(Expr::field(0))],
        });
        let mut out = BatchEmitter::new();
        b.iter(|| {
            for t in &input {
                a.process(0, t, Time::ZERO, &mut out);
            }
            a.process(
                0,
                &Tuple::boundary(TupleId::NONE, Time::from_secs(100)),
                Time::ZERO,
                &mut out,
            );
            let _ = out.take();
        });
    });
    g.finish();
}

fn bench_sunion(c: &mut Criterion) {
    let input = tuples(1024);
    let mut g = c.benchmark_group("sunion");
    g.throughput(Throughput::Elements(input.len() as u64));
    for bucket_ms in [10u64, 100, 500] {
        g.bench_function(format!("serialize_bucket_{bucket_ms}ms"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = SUnionConfig::new(1);
                    cfg.bucket = Duration::from_millis(bucket_ms);
                    cfg.is_input = true;
                    SUnion::new(cfg)
                },
                |mut s| {
                    let mut out = BatchEmitter::new();
                    for t in &input {
                        s.process(0, t, t.stime, &mut out);
                    }
                    s.process(
                        0,
                        &Tuple::boundary(TupleId::NONE, Time::from_secs(10)),
                        Time::from_secs(10),
                        &mut out,
                    );
                    black_box(out.take().0.len())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    // A fragment with a join carrying state: measures whole-fragment
    // checkpoint cost (the §4.4.1 operation on the UP_FAILURE transition).
    let mut b = DiagramBuilder::new();
    let l = b.source("l");
    let r = b.source("r");
    let j = b.add(
        "joined",
        LogicalOp::Join(borealis_diagram::JoinSpec {
            window: Duration::from_secs(10),
            left_key: Expr::field(0),
            right_key: Expr::field(0),
            max_state: Some(1000),
        }),
        &[l, r],
    );
    b.output(j);
    let d = b.build().unwrap();
    let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
    let mut fragment = Fragment::from_plan(&p.fragments[0]);
    // Load up state.
    for (i, t) in tuples(2000).into_iter().enumerate() {
        let stream = if i % 2 == 0 { l } else { r };
        fragment.push(stream, &t, t.stime);
    }
    c.bench_function("fragment_checkpoint_2k_state", |b| {
        b.iter(|| {
            fragment.take_checkpoint();
            black_box(&fragment);
        });
    });
}

/// The batched data plane's headline number: retaining one emitted window
/// and fanning it out to R subscribers (replicas of downstream neighbors +
/// clients) plus serving one fresh replay cursor.
///
/// * `per_tuple_clone_rR` — the pre-batch data plane: an owned `Vec<Tuple>`
///   log, one deep clone per destination (what `Vec<Tuple>`-payload
///   messages cost).
/// * `shared_batch_rR` — the `TupleBatch` plane through the real
///   [`OutputBuffer`]: append by view, every destination gets O(1) shared
///   views.
///
/// Per-destination cost is flat for the batched plane, so the gap widens
/// with replication degree — the property DPC's availability bound needs.
fn bench_fanout(c: &mut Criterion) {
    const N: u64 = 1024;
    let owned: Vec<Tuple> = tuples(N);
    let mut g = c.benchmark_group("fanout_batch");
    g.throughput(Throughput::Elements(N));
    for replication in [1usize, 2, 4] {
        g.bench_function(format!("per_tuple_clone_r{replication}"), |b| {
            b.iter(|| {
                // Retain (clone into the log)...
                let log: Vec<Tuple> = owned.clone();
                // ...then deep-copy the suffix once per subscriber, plus
                // one replay served from the log.
                let mut bytes = 0usize;
                for _ in 0..replication {
                    let msg: Vec<Tuple> = log.clone();
                    bytes += msg.len();
                }
                let replay: Vec<Tuple> = log[..].to_vec();
                bytes += replay.len();
                black_box(bytes)
            });
        });
        g.bench_function(format!("shared_batch_r{replication}"), |b| {
            b.iter_batched(
                || TupleBatch::from_vec(tuples(N)),
                |emitted| {
                    // Retain by view in the real output buffer...
                    let mut buf = OutputBuffer::new(BufferPolicy::Unbounded);
                    buf.append_batch(emitted);
                    // ...then share views with every subscriber and one
                    // replay cursor.
                    let mut bytes = 0usize;
                    let views = buf.batches_from(0);
                    for _ in 0..replication {
                        for v in &views {
                            let msg: TupleBatch = v.clone();
                            bytes += msg.len();
                        }
                    }
                    for v in buf.batches_from(0) {
                        bytes += v.len();
                    }
                    black_box(bytes)
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // Full simulated cluster: 3 sources, replicated node pair, client;
    // one virtual second of processing at 900 tuples/s.
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("cluster_one_virtual_second", |b| {
        b.iter_batched(
            || single_node_system(&SingleNodeOptions::default()),
            |mut sys| {
                sys.run_until(Time::from_secs(1));
                black_box(sys.metrics.total_tentative())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_filter,
    bench_sunion,
    bench_checkpoint,
    bench_fanout,
    bench_end_to_end
);
criterion_main!(benches);
