//! Fig. 18: Ntentative vs chain depth for a 60 s failure. Paper: the
//! benefit of delaying almost disappears — the gain is only the delay of
//! the last node in the chain.

use borealis_workloads::{render_chain, run_chain};

fn main() {
    let rows = run_chain(&[1, 2, 3, 4], &[60.0]);
    println!(
        "{}",
        render_chain(
            "Fig. 18: Ntentative vs chain depth, 60 s failure",
            &rows,
            true,
        )
    );
    for r in &rows {
        assert_eq!(
            r.dup_stable, 0,
            "duplicate stable tuples at depth {}",
            r.depth
        );
    }
}
