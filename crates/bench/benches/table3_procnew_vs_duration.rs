//! Table III: Procnew for different failure durations on a replicated
//! single-node deployment (SUnion + SJoin(100) + SOutput), Process &
//! Process, 3 s budget. Paper: constant ~2.8 s regardless of duration.

use borealis_workloads::{render_availability, run_table3};

fn main() {
    let rows = run_table3(&[2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 30.0, 45.0, 60.0]);
    println!(
        "{}",
        render_availability(
            "Table III: Procnew (seconds) vs failure duration — paper: 2.2 then ~2.8 flat",
            &rows,
            false,
        )
    );
    for r in &rows {
        assert_eq!(
            r.dup_stable, 0,
            "duplicate stable tuples at {}s",
            r.failure_secs
        );
    }
}
