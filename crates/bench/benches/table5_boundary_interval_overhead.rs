//! Table V: serialization latency overhead vs boundary interval (10 ms
//! buckets; the 0 column is a plain Union with no boundaries). Paper:
//! average latency grows proportionally to the boundary interval.

use borealis_workloads::{render_overhead, run_table5};

fn main() {
    let rows = run_table5(&[0, 10, 50, 100, 150, 200, 300, 500]);
    println!(
        "{}",
        render_overhead(
            "Table V: per-tuple latency vs boundary interval (bucket size 10 ms)",
            "boundary(ms)",
            &rows,
        )
    );
    assert!(
        rows.windows(2).all(|w| w[0].avg <= w[1].avg),
        "latency must grow with boundary interval"
    );
}
