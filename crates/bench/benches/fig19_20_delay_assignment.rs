//! Figs. 19/20: dividing the 8 s budget on a chain of four nodes — uniform
//! 2 s per SUnion versus the full budget (6.5 s after the queueing margin)
//! at every SUnion. Paper: the full assignment still meets the bound
//! (initial suspends do not add up: all SUnions suspend simultaneously)
//! and is the only configuration that completely masks a 5 s failure.

use borealis_workloads::{render_chain, run_delay_assignment};

fn main() {
    let rows = run_delay_assignment(&[5.0, 10.0, 30.0, 60.0]);
    println!(
        "{}",
        render_chain(
            "Fig. 19: Procnew (seconds), chain of 4, X = 8 s",
            &rows,
            false,
        )
    );
    println!(
        "{}",
        render_chain("Fig. 20: Ntentative, chain of 4, X = 8 s", &rows, true,)
    );
    let masked = rows
        .iter()
        .find(|r| r.label.contains("6.5") && r.failure_secs == 5.0)
        .expect("full-assignment 5s row");
    assert_eq!(
        masked.ntentative, 0,
        "full assignment must mask the 5 s failure"
    );
}
