//! Fig. 15: Procnew for a chain of 1-4 replicated nodes (D = 2 s each,
//! 30 s boundary-mute failure). Paper: Delay & Delay grows ~2 s per node;
//! Process & Process stays near a single node's delay (+~0.3 s per node).

use borealis_workloads::{render_chain, run_chain};

fn main() {
    let rows = run_chain(&[1, 2, 3, 4], &[30.0]);
    println!(
        "{}",
        render_chain(
            "Fig. 15: Procnew (seconds) vs chain depth, 30 s failure",
            &rows,
            false,
        )
    );
    for r in &rows {
        assert_eq!(
            r.dup_stable, 0,
            "duplicate stable tuples at depth {}",
            r.depth
        );
    }
}
