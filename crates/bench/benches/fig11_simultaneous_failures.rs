//! Fig. 11: example outputs with simultaneous failures (a) and a failure
//! during recovery (b). Prints a downsampled client arrival trace: stable
//! ramp, tentative continuation, correction wave bounded by UNDO/REC_DONE,
//! and the summary invariants (no duplicate stable tuples).

use borealis_workloads::{render_fig11, run_fig11};

fn main() {
    let a = run_fig11(false);
    println!(
        "{}",
        render_fig11("Fig. 11(a): overlapping failures", &a, 400)
    );
    assert_eq!(
        a.dup_stable, 0,
        "protocol violation: duplicate stable tuples"
    );
    let b = run_fig11(true);
    println!(
        "{}",
        render_fig11("Fig. 11(b): failure during recovery", &b, 400)
    );
    assert_eq!(
        b.dup_stable, 0,
        "protocol violation: duplicate stable tuples"
    );
    assert!(b.n_rec_done >= 2, "expected two correction waves");
}
