//! Fig. 16: Ntentative vs chain depth for 5/10/15/30 s failures. Paper:
//! with Delay & Delay the count *decreases* with depth (gain proportional
//! to the accumulated chain delay); with Process & Process it grows
//! slightly with depth (longer reconciliations).

use borealis_workloads::{render_chain, run_chain};

fn main() {
    let rows = run_chain(&[1, 2, 3, 4], &[5.0, 10.0, 15.0, 30.0]);
    println!(
        "{}",
        render_chain(
            "Fig. 16: Ntentative vs chain depth (short failures)",
            &rows,
            true,
        )
    );
    for r in &rows {
        assert_eq!(
            r.dup_stable, 0,
            "duplicate stable tuples at depth {}",
            r.depth
        );
    }
}
