//! Fig. 13: availability (Procnew) and consistency (Ntentative) of the six
//! §6.1 policy variants at 4500 tuples/s with a 3 s budget.
//!
//! Paper shapes: the Process/Delay variants meet the bound at all
//! durations; the Suspend variants break it once reconciliation outlasts
//! the budget (~8 s failures); delaying reduces Ntentative; suspending
//! during stabilization reduces it most but sacrifices availability.

use borealis_workloads::{render_availability, run_fig13, VARIANTS};

fn main() {
    let durations = [2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 30.0];
    let rows = run_fig13(&VARIANTS, &durations);
    println!(
        "{}",
        render_availability(
            "Fig. 13(a)/(c): Procnew (seconds) per variant",
            &rows,
            false,
        )
    );
    println!(
        "{}",
        render_availability("Fig. 13(b)/(d): Ntentative per variant", &rows, true,)
    );
    for r in &rows {
        assert_eq!(
            r.dup_stable, 0,
            "duplicate stable tuples in {} at {}s",
            r.variant, r.failure_secs
        );
    }
}
