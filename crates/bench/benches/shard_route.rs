//! Shard-routing microbenchmark: per-batch partition cost of the
//! delivery layer, before/after the one-pass selection-view partitioner.
//!
//! `per_link_filter/*` is the pre-change shape — every receiving replica
//! link runs `PartitionSpec::filter_batch` over the whole batch, so cost
//! grows with K·R. `router_views/*` is the shipped path — the first
//! receiver's `ShardRouter::route` computes all K selection views in one
//! eval+hash pass and the remaining K·R−1 links clone `Arc`s — so cost is
//! flat in R (and near-flat in K). Debug builds additionally assert the
//! one-hash-per-tuple property via the routing gauge.

use borealis_types::{
    route_key_evals, Expr, PartitionSpec, ShardRouter, Time, Tuple, TupleId, Value,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const BATCH: u64 = 1024;

fn batch() -> borealis_types::TupleBatch {
    (0..BATCH)
        .map(|i| {
            Tuple::insertion(
                TupleId(i + 1),
                Time::from_millis(i),
                vec![Value::Int((i as i64).wrapping_mul(2654435761))],
            )
        })
        .collect()
}

fn spec(shards: u32, index: u32) -> PartitionSpec {
    PartitionSpec {
        key: Expr::field(0),
        shards,
        index,
    }
}

fn bench_shard_route(c: &mut Criterion) {
    let input = batch();
    for replication in [1u32, 2] {
        let mut g = c.benchmark_group(format!("shard_route_r{replication}"));
        g.throughput(Throughput::Elements(BATCH));
        for k in [1u32, 4, 8] {
            // Pre-change shape: each of the K·R receiver links filters the
            // whole batch independently.
            g.bench_function(format!("per_link_filter_k{k}"), |b| {
                b.iter(|| {
                    for shard in 0..k {
                        for _ in 0..replication {
                            black_box(spec(k, shard).filter_batch(black_box(&input)));
                        }
                    }
                });
            });
            // Shipped path: one router pass serves the whole fan-out.
            g.bench_function(format!("router_views_k{k}"), |b| {
                b.iter(|| {
                    let view = black_box(input.clone()).into();
                    let mut router = ShardRouter::new();
                    let before = route_key_evals();
                    for shard in 0..k {
                        for _ in 0..replication {
                            black_box(router.route(&spec(k, shard), &view));
                        }
                    }
                    // The one-pass contract, checked on every iteration in
                    // debug builds (the gauge reads 0 in release builds).
                    if cfg!(debug_assertions) {
                        assert_eq!(route_key_evals() - before, if k > 1 { BATCH } else { 0 });
                    }
                });
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_shard_route);
criterion_main!(benches);
