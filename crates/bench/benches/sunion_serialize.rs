//! The serialization hot path, measured head to head (PR 4 acceptance
//! numbers, recorded in `BENCH_PR4.json`):
//!
//! * `sunion_serialize/*` — the same tuple stream pushed through one SUnion
//!   tuple-at-a-time (the seed data path: one owned tuple per call, cloned
//!   into its bucket) versus batch-natively (`process_batch`: maximal
//!   same-bucket runs buffered as O(1) shared views). Swept at delivery
//!   batch sizes 32 and 256.
//! * `sunion_checkpoint/*` — `Fragment::take_checkpoint` on a fragment
//!   whose entry SUnion buffers ≥10k tuples. With copy-on-write snapshots
//!   this is O(#operators) reference-count bumps; the `deep_clone` baseline
//!   re-enacts what the seed's `OpSnapshot::new(state.clone())` paid at the
//!   same buffer depth (materializing every buffered tuple).

use borealis_diagram::{plan_deployment, DeploymentSpec, DpcConfig, QueryBuilder};
use borealis_engine::Fragment;
use borealis_ops::{BatchEmitter, Operator, SUnion, SUnionConfig};
use borealis_types::{Duration, Time, Tuple, TupleBatch, TupleId, Value};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

const N: u64 = 4096;

/// An in-order tuple stream spanning ~41 buckets at the default 100 ms
/// bucket size (stime advances 1 ms per tuple) — the common no-failure case
/// the sorted-bucket fast path targets.
fn tuples(n: u64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::insertion(
                TupleId(i + 1),
                Time::from_millis(i),
                vec![Value::Int(i as i64)],
            )
        })
        .collect()
}

fn input_sunion() -> SUnion {
    let mut cfg = SUnionConfig::new(1);
    cfg.bucket = Duration::from_millis(100);
    cfg.is_input = true;
    SUnion::new(cfg)
}

fn flush(s: &mut SUnion, out: &mut BatchEmitter) -> usize {
    s.process(
        0,
        &Tuple::boundary(TupleId::NONE, Time::from_secs(100)),
        Time::from_secs(100),
        out,
    );
    out.take().0.len()
}

fn bench_serialize(c: &mut Criterion) {
    let owned = tuples(N);
    let mut g = c.benchmark_group("sunion_serialize");
    g.throughput(Throughput::Elements(N));
    for batch in [32usize, 256] {
        let chunks: Vec<TupleBatch> = TupleBatch::from_vec(owned.clone())
            .chunks_shared(batch)
            .collect();
        g.bench_function(format!("per_tuple_b{batch}"), |b| {
            b.iter_batched(
                input_sunion,
                |mut s| {
                    let mut out = BatchEmitter::new();
                    for chunk in &chunks {
                        for t in chunk.as_slice() {
                            s.process(0, t, t.stime, &mut out);
                        }
                    }
                    black_box(flush(&mut s, &mut out))
                },
                BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("batch_native_b{batch}"), |b| {
            b.iter_batched(
                input_sunion,
                |mut s| {
                    let mut out = BatchEmitter::new();
                    for chunk in &chunks {
                        s.process_batch(0, chunk, chunk[0].stime, &mut out);
                    }
                    black_box(flush(&mut s, &mut out))
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

/// A single-fragment relay (entry SUnion + SOutput) with `n` tuples parked
/// in the SUnion's buckets: no boundary ever arrives, so everything stays
/// buffered — the worst case a failure-instant checkpoint can face.
fn loaded_fragment(n: u64) -> Fragment {
    let mut q = QueryBuilder::new();
    let input = q.source("in");
    let out = q.relay("out", input);
    q.output(out);
    let d = q.build().expect("relay diagram is valid");
    let p = plan_deployment(&d, &DeploymentSpec::single(1), &DpcConfig::default())
        .expect("relay plan is valid");
    let mut fragment = Fragment::from_plan(&p.fragments[0]);
    let batch = TupleBatch::from_vec(tuples(n));
    fragment.push_batch(input.id(), &batch, Time::from_millis(1));
    fragment
}

fn bench_checkpoint(c: &mut Criterion) {
    const BUFFERED: u64 = 10_000;
    let mut g = c.benchmark_group("sunion_checkpoint");
    let mut fragment = loaded_fragment(BUFFERED);
    g.bench_function("cow_10k_buffered", |b| {
        b.iter(|| {
            fragment.take_checkpoint();
            black_box(&fragment);
        });
    });
    // What the seed paid for the same checkpoint: a deep clone of every
    // buffered tuple (the dominant term of `state.clone()` on a loaded
    // SUnion).
    let state = tuples(BUFFERED);
    g.bench_function("deep_clone_10k_baseline", |b| {
        b.iter(|| black_box(state.clone()));
    });
    g.finish();
}

criterion_group!(benches, bench_serialize, bench_checkpoint);
criterion_main!(benches);
