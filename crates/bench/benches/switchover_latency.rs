//! §5.1: crash the replica a client reads from and measure the data gap
//! until the surviving replica takes over. Paper: ~40 ms switch after
//! detection; with a 100 ms keep-alive, at most ~140 ms without data.

use borealis_workloads::run_switchover;

fn main() {
    let r = run_switchover();
    println!("Switchover experiment (crash primary replica):");
    println!("  max gap between new tuples : {} ", r.max_gap);
    println!("  stable tuples delivered    : {}", r.n_stable);
    println!("  duplicate stable tuples    : {}", r.dup_stable);
    assert_eq!(r.dup_stable, 0);
    assert!(
        r.max_gap.as_millis() < 1000,
        "switchover too slow: {}",
        r.max_gap
    );
}
