//! The per-actor timer wheel: deadline-ordered deferred work against the
//! monotonic clock.
//!
//! Each actor thread owns one wheel holding its pending [`RuntimeCtx`]
//! timers *and* its delayed sends (`send_after`, the CPU cost model's
//! "outputs leave when the work completes"). The actor loop pops due
//! entries before each receive and sleeps at most until the next deadline,
//! so timer precision is bounded by OS scheduling, not by a polling
//! period.
//!
//! [`RuntimeCtx`]: borealis_dpc::RuntimeCtx

use borealis_dpc::NetMsg;
use borealis_types::{NodeId, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What to do when an entry comes due.
#[derive(Debug)]
pub enum Due {
    /// Fire `on_timer(kind)` on the owning actor.
    Timer(u64),
    /// Release a delayed send (departure instant reached).
    Send {
        /// Destination actor.
        to: NodeId,
        /// The message.
        msg: NetMsg,
    },
    /// The owning actor's modeled CPU finished consuming a delivery from
    /// `from`: return the link credit (releasing the sender's next queued
    /// message, if any).
    Replenish {
        /// The sender whose link credit returns.
        from: NodeId,
    },
}

struct Entry {
    at: Time,
    seq: u64,
    due: Due,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, insertion
        // order (seq) breaking ties — same total order as the simulator's
        // event queue.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deadline-ordered pending work for one actor.
#[derive(Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Schedules `on_timer(kind)` at `at`.
    pub fn push_timer(&mut self, at: Time, kind: u64) {
        self.push(at, Due::Timer(kind));
    }

    /// Schedules a delayed send departing at `at`.
    pub fn push_send(&mut self, at: Time, to: NodeId, msg: NetMsg) {
        self.push(at, Due::Send { to, msg });
    }

    /// Schedules a credit return for a delivery from `from`, due when the
    /// owning actor's modeled CPU finishes consuming it.
    pub fn push_replenish(&mut self, at: Time, from: NodeId) {
        self.push(at, Due::Replenish { from });
    }

    fn push(&mut self, at: Time, due: Due) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, due });
    }

    /// Deadline of the next entry, if any.
    pub fn next_due(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest entry if it is due at `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, Due)> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            let e = self.heap.pop().expect("peeked entry exists");
            Some((e.at, e.due))
        } else {
            None
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_then_insertion_order() {
        let mut w = TimerWheel::new();
        w.push_timer(Time::from_millis(20), 2);
        w.push_timer(Time::from_millis(10), 1);
        w.push_timer(Time::from_millis(10), 3);
        assert_eq!(w.next_due(), Some(Time::from_millis(10)));
        assert!(w.pop_due(Time::from_millis(5)).is_none(), "nothing due yet");
        let kinds: Vec<u64> = std::iter::from_fn(|| w.pop_due(Time::from_millis(30)))
            .map(|(_, d)| match d {
                Due::Timer(k) => k,
                Due::Send { .. } | Due::Replenish { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(kinds, vec![1, 3, 2], "deadline order, ties by insertion");
        assert!(w.is_empty());
    }

    #[test]
    fn sends_and_timers_interleave() {
        let mut w = TimerWheel::new();
        w.push_send(Time::from_millis(5), NodeId(1), NetMsg::HeartbeatReq);
        w.push_timer(Time::from_millis(3), 9);
        assert_eq!(w.len(), 2);
        let (at, first) = w.pop_due(Time::from_millis(10)).unwrap();
        assert_eq!(at, Time::from_millis(3));
        assert!(matches!(first, Due::Timer(9)));
        let (_, second) = w.pop_due(Time::from_millis(10)).unwrap();
        assert!(matches!(second, Due::Send { to: NodeId(1), .. }));
    }
}
