//! The per-worker timer wheel: deadline-ordered deferred work against the
//! monotonic clock.
//!
//! Under the pooled engine each **worker** (not each actor) owns one wheel
//! holding owner-tagged entries for every actor it has recently run: their
//! pending [`RuntimeCtx`] timers, their delayed sends (`send_after`, the
//! CPU cost model's "outputs leave when the work completes"), and their
//! credit replenishments. The worker fires due entries between actor
//! activations and parks at most until its earliest deadline, so timer
//! precision is bounded by scheduling granularity, not by a polling
//! period — and an idle worker with an empty wheel parks indefinitely.
//!
//! An entry stays on the wheel of the worker that was running its owner
//! when it was scheduled; if the owner migrates to another worker in the
//! meantime the entry still fires on time (a due `Timer` is re-enqueued
//! into the owner's mailbox; `Send`/`Replenish` are executed directly by
//! the wheel-owning worker on the owner's behalf).
//!
//! [`RuntimeCtx`]: borealis_dpc::RuntimeCtx

use borealis_dpc::NetMsg;
use borealis_types::{NodeId, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What to do when an entry comes due. Every variant carries the actor it
/// belongs to (`owner`), since one wheel serves many actors.
#[derive(Debug)]
pub enum Due {
    /// Re-enqueue `on_timer(kind)` into `owner`'s mailbox (suppressed if
    /// the owner is crashed, as in the simulator).
    Timer {
        /// The actor whose timer fires.
        owner: NodeId,
        /// Timer kind.
        kind: u64,
    },
    /// Release a delayed send from `owner` (departure instant reached).
    Send {
        /// The sending actor.
        owner: NodeId,
        /// Destination actor.
        to: NodeId,
        /// The message.
        msg: NetMsg,
    },
    /// `owner`'s modeled CPU finished consuming a delivery from `from`:
    /// return the link credit (releasing the sender's next queued
    /// message, if any).
    Replenish {
        /// The consuming actor.
        owner: NodeId,
        /// The sender whose link credit returns.
        from: NodeId,
    },
}

struct Entry {
    at: Time,
    seq: u64,
    due: Due,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, insertion
        // order (seq) breaking ties — same total order as the simulator's
        // event queue.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deadline-ordered pending work for one worker's actors.
#[derive(Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Entry>,
    seq: u64,
    /// Deadline/seq of the last popped entry: pops must be monotone in
    /// `(at, seq)` or the wheel no longer matches the simulator's event
    /// order (debug builds assert this in [`TimerWheel::pop_due`]).
    #[cfg(debug_assertions)]
    last_popped: Option<(Time, u64)>,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Schedules `owner`'s `on_timer(kind)` at `at`.
    pub fn push_timer(&mut self, at: Time, owner: NodeId, kind: u64) {
        self.push(at, Due::Timer { owner, kind });
    }

    /// Schedules a delayed send from `owner` departing at `at`.
    pub fn push_send(&mut self, at: Time, owner: NodeId, to: NodeId, msg: NetMsg) {
        self.push(at, Due::Send { owner, to, msg });
    }

    /// Schedules a credit return for `owner`'s delivery from `from`, due
    /// when `owner`'s modeled CPU finishes consuming it.
    pub fn push_replenish(&mut self, at: Time, owner: NodeId, from: NodeId) {
        self.push(at, Due::Replenish { owner, from });
    }

    fn push(&mut self, at: Time, due: Due) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, due });
    }

    /// Deadline of the next entry, if any (bounds the owning worker's
    /// park).
    pub fn next_due(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest entry if it is due at `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, Due)> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            let e = self.heap.pop().expect("peeked entry exists");
            #[cfg(debug_assertions)]
            {
                debug_assert!(
                    self.last_popped.is_none_or(|last| last < (e.at, e.seq)),
                    "timer wheel popped out of (deadline, seq) order: \
                     {:?} after {:?}",
                    (e.at, e.seq),
                    self.last_popped
                );
                self.last_popped = Some((e.at, e.seq));
            }
            Some((e.at, e.due))
        } else {
            None
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_then_insertion_order() {
        let mut w = TimerWheel::new();
        let me = NodeId(0);
        w.push_timer(Time::from_millis(20), me, 2);
        w.push_timer(Time::from_millis(10), me, 1);
        w.push_timer(Time::from_millis(10), NodeId(7), 3);
        assert_eq!(w.next_due(), Some(Time::from_millis(10)));
        assert!(w.pop_due(Time::from_millis(5)).is_none(), "nothing due yet");
        let fired: Vec<(u32, u64)> = std::iter::from_fn(|| w.pop_due(Time::from_millis(30)))
            .map(|(_, d)| match d {
                Due::Timer { owner, kind } => (owner.0, kind),
                Due::Send { .. } | Due::Replenish { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(
            fired,
            vec![(0, 1), (7, 3), (0, 2)],
            "deadline order across owners, ties by insertion"
        );
        assert!(w.is_empty());
    }

    #[test]
    fn sends_and_timers_interleave() {
        let mut w = TimerWheel::new();
        w.push_send(
            Time::from_millis(5),
            NodeId(0),
            NodeId(1),
            NetMsg::HeartbeatReq,
        );
        w.push_timer(Time::from_millis(3), NodeId(0), 9);
        assert_eq!(w.len(), 2);
        let (at, first) = w.pop_due(Time::from_millis(10)).unwrap();
        assert_eq!(at, Time::from_millis(3));
        assert!(matches!(first, Due::Timer { kind: 9, .. }));
        let (_, second) = w.pop_due(Time::from_millis(10)).unwrap();
        assert!(matches!(
            second,
            Due::Send {
                owner: NodeId(0),
                to: NodeId(1),
                ..
            }
        ));
    }
}
