//! The shared link table: connectivity state + fault application for the
//! thread engine, with message-loss accounting.
//!
//! Reuses `borealis_sim::Network` for the semantics (bidirectional link
//! failures, node crashes blocking all links, partitions) so both runtimes
//! share one fault model, and wraps it for cross-thread access. Senders
//! check reachability at send time; receivers check again at delivery time
//! — the same two drop points the simulator counts.

use borealis_sim::{FaultEvent, Network};
use borealis_types::{Duration, NodeId, PartitionSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Message-loss accounting for a whole thread-engine run (the wall-clock
/// sibling of `borealis_sim::SimStats`).
#[derive(Debug, Default)]
pub struct RuntimeStats {
    send_unreachable_drops: AtomicU64,
    delivery_drops: AtomicU64,
    timers_suppressed: AtomicU64,
    messages_delivered: AtomicU64,
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Messages dropped because the destination was unreachable at send
    /// time.
    pub send_unreachable_drops: u64,
    /// Messages dropped at delivery time (link broke while in flight, or
    /// the receiving endpoint was down).
    pub delivery_drops: u64,
    /// Timer callbacks suppressed because the actor was crashed when they
    /// came due.
    pub timers_suppressed: u64,
    /// Messages successfully delivered to handlers.
    pub messages_delivered: u64,
}

impl StatsSnapshot {
    /// Total messages lost to faults.
    pub fn total_drops(&self) -> u64 {
        self.send_unreachable_drops + self.delivery_drops
    }
}

impl RuntimeStats {
    pub(crate) fn count_send_drop(&self) {
        self.send_unreachable_drops.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_delivery_drop(&self) {
        self.delivery_drops.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_timer_suppressed(&self) {
        self.timers_suppressed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_delivered(&self) {
        self.messages_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a consistent-enough copy (relaxed; exact totals only after the
    /// runtime has shut down).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            send_unreachable_drops: self.send_unreachable_drops.load(Ordering::Relaxed),
            delivery_drops: self.delivery_drops.load(Ordering::Relaxed),
            timers_suppressed: self.timers_suppressed.load(Ordering::Relaxed),
            messages_delivered: self.messages_delivered.load(Ordering::Relaxed),
        }
    }
}

/// Cross-thread connectivity state. The fault controller writes (applying
/// scripted [`FaultEvent`]s); every actor thread reads on each send and
/// delivery.
#[derive(Debug)]
pub struct LinkTable {
    // RwLock: every actor thread reads on each send/delivery; only the
    // fault controller writes, a handful of times per run.
    net: RwLock<Network>,
    // Key-partition filters per shard-replica receiver. Immutable after
    // construction, so the hot send path reads them lock-free (and the
    // common no-partition case is a single hash miss).
    partitions: std::collections::HashMap<NodeId, Arc<PartitionSpec>>,
}

impl LinkTable {
    /// A fully connected table with no partitioned receivers.
    pub fn new() -> LinkTable {
        LinkTable::with_partitions(Vec::new())
    }

    /// A fully connected table whose listed nodes are key-partitioned
    /// receivers: every data batch sent to them is filtered to their shard
    /// on the wire.
    pub fn with_partitions(partitions: Vec<(NodeId, PartitionSpec)>) -> LinkTable {
        LinkTable {
            // Latency is a simulator concept; the thread engine runs at
            // native channel latency, so the value here is never read.
            net: RwLock::new(Network::new(Duration::ZERO)),
            partitions: partitions
                .into_iter()
                .map(|(n, s)| (n, Arc::new(s)))
                .collect(),
        }
    }

    /// True if a message from `a` can currently reach `b`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.net.read().expect("link table lock").reachable(a, b)
    }

    /// True if the node itself is up.
    pub fn node_up(&self, n: NodeId) -> bool {
        self.net.read().expect("link table lock").node_up(n)
    }

    /// The partition filter governing deliveries to `node`, if any
    /// (lock-free; the map is immutable after construction).
    pub fn partition_of(&self, node: NodeId) -> Option<&Arc<PartitionSpec>> {
        self.partitions.get(&node)
    }

    /// Applies a fault (or heal) to the connectivity state.
    pub fn apply(&self, fault: &FaultEvent) {
        let mut net = self.net.write().expect("link table lock");
        match fault {
            FaultEvent::LinkDown { a, b } => net.link_down(*a, *b),
            FaultEvent::LinkUp { a, b } => net.link_up(*a, *b),
            FaultEvent::NodeDown(n) => net.node_down(*n),
            FaultEvent::NodeUp(n) => net.node_up_again(*n),
            FaultEvent::Custom { .. } => {}
        }
    }

    /// Partitions the system: every link between `group_a` and `group_b`
    /// goes down (scripting convenience mirroring
    /// `borealis_sim::Network::partition`).
    pub fn partition(&self, group_a: &[NodeId], group_b: &[NodeId]) {
        self.net
            .write()
            .expect("link table lock")
            .partition(group_a, group_b);
    }

    /// Heals a partition created with [`LinkTable::partition`].
    pub fn heal_partition(&self, group_a: &[NodeId], group_b: &[NodeId]) {
        self.net
            .write()
            .expect("link table lock")
            .heal_partition(group_a, group_b);
    }
}

impl Default for LinkTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_flow_through_to_connectivity() {
        let t = LinkTable::new();
        assert!(t.reachable(NodeId(0), NodeId(1)));
        t.apply(&FaultEvent::LinkDown {
            a: NodeId(0),
            b: NodeId(1),
        });
        assert!(!t.reachable(NodeId(1), NodeId(0)), "bidirectional");
        t.apply(&FaultEvent::LinkUp {
            a: NodeId(1),
            b: NodeId(0),
        });
        assert!(t.reachable(NodeId(0), NodeId(1)));
        t.apply(&FaultEvent::NodeDown(NodeId(2)));
        assert!(!t.reachable(NodeId(0), NodeId(2)));
        assert!(!t.node_up(NodeId(2)));
        t.apply(&FaultEvent::NodeUp(NodeId(2)));
        assert!(t.node_up(NodeId(2)));
    }

    #[test]
    fn partitions_cut_cross_links_only() {
        let t = LinkTable::new();
        let a = [NodeId(0), NodeId(1)];
        let b = [NodeId(2), NodeId(3)];
        t.partition(&a, &b);
        assert!(!t.reachable(NodeId(0), NodeId(3)));
        assert!(t.reachable(NodeId(0), NodeId(1)));
        t.heal_partition(&a, &b);
        assert!(t.reachable(NodeId(0), NodeId(3)));
    }

    #[test]
    fn stats_snapshot_counts() {
        let s = RuntimeStats::default();
        s.count_send_drop();
        s.count_delivery_drop();
        s.count_delivery_drop();
        s.count_delivered();
        let snap = s.snapshot();
        assert_eq!(snap.send_unreachable_drops, 1);
        assert_eq!(snap.delivery_drops, 2);
        assert_eq!(snap.total_drops(), 3);
        assert_eq!(snap.messages_delivered, 1);
    }
}
