//! The shared link table: connectivity state, credit-based flow control,
//! and fault application for the thread engine, with message-loss
//! accounting.
//!
//! Reuses `borealis_sim::Network` for the connectivity semantics
//! (bidirectional link failures, node crashes blocking all links,
//! partitions) and `borealis_sim::FlowControl` for the credit ledger, so
//! both runtimes share one fault model *and* one flow-control
//! implementation — the thread engine merely puts them behind locks for
//! cross-thread access. Senders check reachability at send time; receivers
//! check again at delivery time — the same two drop points the simulator
//! counts.

use crate::sync::{read, relock, write, Arc, AtomicU64, Mutex, Ordering, RwLock};
use borealis_dpc::{NetMsg, Transport};
use borealis_sim::{FaultEvent, FlowControl, Network, ShardMsg};
use borealis_types::{
    CreditPolicy, Duration, FlowGauges, NodeId, PartitionSpec, SchedGauges, SendOutcome, Time,
    WireGauges,
};

/// Message-loss accounting for a whole thread-engine run (the wall-clock
/// sibling of `borealis_sim::SimStats`).
#[derive(Debug, Default)]
pub struct RuntimeStats {
    send_unreachable_drops: AtomicU64,
    delivery_drops: AtomicU64,
    timers_suppressed: AtomicU64,
    messages_delivered: AtomicU64,
}

/// A point-in-time copy of [`RuntimeStats`] plus the transport's
/// flow-control gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Messages dropped because the destination was unreachable at send
    /// time.
    pub send_unreachable_drops: u64,
    /// Messages dropped at delivery time (link broke while in flight, or
    /// the receiving endpoint was down).
    pub delivery_drops: u64,
    /// Timer callbacks suppressed because the actor was crashed when they
    /// came due.
    pub timers_suppressed: u64,
    /// Messages successfully delivered to handlers.
    pub messages_delivered: u64,
    /// Queue-depth and stall-time gauges of the credit ledger (zero under
    /// [`CreditPolicy::Unbounded`]).
    pub flow: FlowGauges,
    /// Worker-pool scheduler gauges (steals, run-queue depths, activation
    /// run-time histogram).
    pub sched: SchedGauges,
    /// Socket-transport wire gauges (zero for in-process deployments;
    /// filled by [`RunningTcp`](crate::tcp::RunningTcp)).
    pub wire: WireGauges,
}

impl StatsSnapshot {
    /// Total messages lost to faults.
    pub fn total_drops(&self) -> u64 {
        self.send_unreachable_drops + self.delivery_drops
    }
}

impl RuntimeStats {
    pub(crate) fn count_send_drop(&self) {
        self.send_unreachable_drops.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_delivery_drop(&self) {
        self.delivery_drops.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_timer_suppressed(&self) {
        self.timers_suppressed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn count_delivered(&self) {
        self.messages_delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_delivery_drops(&self, n: u64) {
        self.delivery_drops.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a consistent-enough copy (relaxed; exact totals only after the
    /// runtime has shut down).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            send_unreachable_drops: self.send_unreachable_drops.load(Ordering::Relaxed),
            delivery_drops: self.delivery_drops.load(Ordering::Relaxed),
            timers_suppressed: self.timers_suppressed.load(Ordering::Relaxed),
            messages_delivered: self.messages_delivered.load(Ordering::Relaxed),
            flow: FlowGauges::default(),
            sched: SchedGauges::default(),
            wire: WireGauges::default(),
        }
    }
}

/// Cross-thread connectivity state. The fault controller writes (applying
/// scripted [`FaultEvent`]s); every actor thread reads on each send and
/// delivery.
#[derive(Debug)]
pub struct LinkTable {
    // RwLock: every actor thread reads on each send/delivery; only the
    // fault controller writes, a handful of times per run.
    net: RwLock<Network>,
    // Key-partition filters per shard-replica receiver. Immutable after
    // construction, so the hot send path reads them lock-free (and the
    // common no-partition case is a single hash miss).
    partitions: std::collections::HashMap<NodeId, Arc<PartitionSpec>>,
    // The credit ledger (shared with the simulator by construction). A
    // plain mutex: touched only for credit-controlled data messages under
    // a tracking policy; `policy` is kept outside the lock so the
    // Unbounded fast path never takes it.
    flow: Mutex<FlowControl<NetMsg>>,
    policy: CreditPolicy,
}

impl LinkTable {
    /// A fully connected table with no partitioned receivers and no flow
    /// control.
    pub fn new() -> LinkTable {
        LinkTable::with_partitions(Vec::new())
    }

    /// A fully connected table whose listed nodes are key-partitioned
    /// receivers, with no flow control.
    pub fn with_partitions(partitions: Vec<(NodeId, PartitionSpec)>) -> LinkTable {
        LinkTable::with_config(partitions, CreditPolicy::Unbounded)
    }

    /// A fully connected table with partitioned receivers and the given
    /// credit-based flow-control policy.
    pub fn with_config(
        partitions: Vec<(NodeId, PartitionSpec)>,
        policy: CreditPolicy,
    ) -> LinkTable {
        LinkTable {
            // Latency is a simulator concept; the thread engine runs at
            // native channel latency, so the value here is never read.
            net: RwLock::new(Network::new(Duration::ZERO)),
            partitions: partitions
                .into_iter()
                .map(|(n, s)| (n, Arc::new(s)))
                .collect(),
            flow: Mutex::new(FlowControl::new(policy)),
            policy,
        }
    }

    /// True if a message from `a` can currently reach `b`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        read(&self.net).reachable(a, b)
    }

    /// True if the node itself is up.
    pub fn node_up(&self, n: NodeId) -> bool {
        read(&self.net).node_up(n)
    }

    /// The partition filter governing deliveries to `node`, if any
    /// (lock-free; the map is immutable after construction).
    pub fn partition_of(&self, node: NodeId) -> Option<&Arc<PartitionSpec>> {
        self.partitions.get(&node)
    }

    /// The credit policy governing every link (lock-free copy).
    pub fn credit_policy(&self) -> CreditPolicy {
        self.policy
    }

    /// True when `msg` must pass through the credit ledger.
    pub fn tracks(&self, msg: &NetMsg) -> bool {
        self.policy.is_tracking() && msg.credit_controlled()
    }

    /// Admits a credit-controlled message to `from → to`: returns it when
    /// a credit was available, or queues it at the sender (`None`).
    pub fn admit(&self, from: NodeId, to: NodeId, msg: NetMsg, now: Time) -> Option<NetMsg> {
        let mut flow = relock(&self.flow);
        let admitted = flow.admit(from, to, msg, now);
        #[cfg(debug_assertions)]
        flow.check_invariants();
        admitted
    }

    /// One delivery on `from → to` was consumed: returns the next queued
    /// message to release, if any.
    pub fn consumed_release(&self, from: NodeId, to: NodeId, now: Time) -> Option<NetMsg> {
        let mut flow = relock(&self.flow);
        let released = flow.replenish(from, to, now);
        #[cfg(debug_assertions)]
        flow.check_invariants();
        released
    }

    /// Continuous credit-stall duration of `from → to` (lock-free zero
    /// when flow control is off).
    pub fn stalled_for(&self, from: NodeId, to: NodeId, now: Time) -> Duration {
        if !self.policy.is_tracking() {
            return Duration::ZERO;
        }
        relock(&self.flow).stalled_for(from, to, now)
    }

    /// Queue-depth and stall-time gauges of the credit ledger.
    pub fn flow_gauges(&self) -> FlowGauges {
        relock(&self.flow).gauges()
    }

    /// Applies a fault (or heal) to the connectivity state at `now` (the
    /// runtime clock; closes stall-time accounting). Returns the number of
    /// queued sends purged by a node crash (in-flight losses the caller
    /// records as delivery drops).
    pub fn apply(&self, fault: &FaultEvent, now: Time) -> u64 {
        let mut net = write(&self.net);
        match fault {
            FaultEvent::LinkDown { a, b } => net.link_down(*a, *b),
            FaultEvent::LinkUp { a, b } => net.link_up(*a, *b),
            FaultEvent::NodeDown(n) => {
                net.node_down(*n);
                if self.policy.is_tracking() {
                    // Pending credits and queued sends die with the node;
                    // the links restart with a full window. The purge
                    // count is computed inside the ledger lock, so an
                    // in-flight admit can never be counted twice.
                    let mut flow = relock(&self.flow);
                    let purged = flow.reset_node(*n, now);
                    #[cfg(debug_assertions)]
                    flow.check_invariants();
                    return purged;
                }
            }
            FaultEvent::NodeUp(n) => net.node_up_again(*n),
            FaultEvent::Custom { .. } => {}
        }
        0
    }

    /// Partitions the system: every link between `group_a` and `group_b`
    /// goes down (scripting convenience mirroring
    /// `borealis_sim::Network::partition`).
    pub fn partition(&self, group_a: &[NodeId], group_b: &[NodeId]) {
        write(&self.net).partition(group_a, group_b);
    }

    /// Heals a partition created with [`LinkTable::partition`].
    pub fn heal_partition(&self, group_a: &[NodeId], group_b: &[NodeId]) {
        write(&self.net).heal_partition(group_a, group_b);
    }
}

impl Default for LinkTable {
    fn default() -> Self {
        Self::new()
    }
}

/// The thread-engine side of the shared [`Transport`] contract — the same
/// credit verbs the simulator's kernel exposes, behind this table's locks.
/// The engine's hot paths use the interior-mutability inherent methods;
/// this impl exists so deployment-level tooling and tests can treat both
/// runtimes' transports uniformly.
impl Transport for LinkTable {
    fn credit_policy(&self) -> CreditPolicy {
        self.policy
    }

    fn try_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: NetMsg,
        now: Time,
    ) -> (SendOutcome, Option<NetMsg>) {
        if !self.tracks(&msg) {
            return (SendOutcome::Delivered, Some(msg));
        }
        match self.admit(from, to, msg, now) {
            Some(m) => (SendOutcome::Delivered, Some(m)),
            None => (SendOutcome::Queued, None),
        }
    }

    fn consumed(&mut self, from: NodeId, to: NodeId, now: Time) -> Option<NetMsg> {
        self.consumed_release(from, to, now)
    }

    fn stalled_for(&self, from: NodeId, to: NodeId, now: Time) -> Duration {
        LinkTable::stalled_for(self, from, to, now)
    }

    fn flow_gauges(&self) -> FlowGauges {
        LinkTable::flow_gauges(self)
    }
}

#[cfg(all(test, not(borealis_model)))]
mod tests {
    use super::*;

    #[test]
    fn faults_flow_through_to_connectivity() {
        let t = LinkTable::new();
        assert!(t.reachable(NodeId(0), NodeId(1)));
        t.apply(
            &FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(1),
            },
            Time::ZERO,
        );
        assert!(!t.reachable(NodeId(1), NodeId(0)), "bidirectional");
        t.apply(
            &FaultEvent::LinkUp {
                a: NodeId(1),
                b: NodeId(0),
            },
            Time::ZERO,
        );
        assert!(t.reachable(NodeId(0), NodeId(1)));
        t.apply(&FaultEvent::NodeDown(NodeId(2)), Time::ZERO);
        assert!(!t.reachable(NodeId(0), NodeId(2)));
        assert!(!t.node_up(NodeId(2)));
        t.apply(&FaultEvent::NodeUp(NodeId(2)), Time::ZERO);
        assert!(t.node_up(NodeId(2)));
    }

    fn data_msg() -> NetMsg {
        NetMsg::Data {
            stream: borealis_types::StreamId(0),
            tuples: borealis_types::TupleBatch::single(borealis_types::Tuple::boundary(
                borealis_types::TupleId::NONE,
                Time::ZERO,
            ))
            .into(),
        }
    }

    #[test]
    fn credit_window_gates_data_and_crash_purges() {
        let t = LinkTable::with_config(Vec::new(), CreditPolicy::Window(1));
        let (a, b) = (NodeId(0), NodeId(1));
        assert!(t.tracks(&data_msg()));
        assert!(!t.tracks(&NetMsg::HeartbeatReq), "control traffic bypasses");
        assert!(t.admit(a, b, data_msg(), Time::ZERO).is_some());
        assert!(t.admit(a, b, data_msg(), Time::ZERO).is_none(), "queued");
        assert!(
            t.stalled_for(a, b, Time::from_millis(10)) == Duration::from_millis(10),
            "stall visible"
        );
        // The receiver consumes one delivery: the queued message releases.
        assert!(t.consumed_release(a, b, Time::from_millis(20)).is_some());
        assert_eq!(t.flow_gauges().released, 1);
        // Crash purges queued sends and restores the window.
        assert!(t.admit(a, b, data_msg(), Time::from_millis(30)).is_none());
        let purged = t.apply(&FaultEvent::NodeDown(b), Time::from_millis(40));
        assert_eq!(purged, 1);
        assert_eq!(t.flow_gauges().queued_now, 0);
    }

    #[test]
    fn unbounded_table_never_locks_the_ledger() {
        let t = LinkTable::new();
        assert_eq!(t.credit_policy(), CreditPolicy::Unbounded);
        assert!(!t.tracks(&data_msg()));
        assert_eq!(
            t.stalled_for(NodeId(0), NodeId(1), Time::from_millis(5)),
            Duration::ZERO
        );
        assert_eq!(t.flow_gauges(), FlowGauges::default());
    }

    #[test]
    fn partitions_cut_cross_links_only() {
        let t = LinkTable::new();
        let a = [NodeId(0), NodeId(1)];
        let b = [NodeId(2), NodeId(3)];
        t.partition(&a, &b);
        assert!(!t.reachable(NodeId(0), NodeId(3)));
        assert!(t.reachable(NodeId(0), NodeId(1)));
        t.heal_partition(&a, &b);
        assert!(t.reachable(NodeId(0), NodeId(3)));
    }

    #[test]
    fn stats_snapshot_counts() {
        let s = RuntimeStats::default();
        s.count_send_drop();
        s.count_delivery_drop();
        s.count_delivery_drop();
        s.count_delivered();
        let snap = s.snapshot();
        assert_eq!(snap.send_unreachable_drops, 1);
        assert_eq!(snap.delivery_drops, 2);
        assert_eq!(snap.total_drops(), 3);
        assert_eq!(snap.messages_delivered, 1);
    }
}
