//! # borealis-runtime
//!
//! The real-time execution engine for the DPC protocol: the same
//! `ProcessingNode` / `DataSource` / `ClientProxy` actors that run under
//! the deterministic simulator, driven against the monotonic wall clock on
//! a **fixed pool of worker threads**.
//!
//! * every actor is a schedulable task: per-worker run queues with work
//!   stealing, a global injector for cross-worker wakeups, and an
//!   Idle/Queued/Running state machine so a mailbox push schedules an idle
//!   actor exactly once (see [`crate::scheduler`]) — thousands of actors
//!   multiplex onto a handful of OS threads;
//! * `NetMsg::Data` payloads are `Arc`-backed `TupleBatch` views, so
//!   cross-thread fan-out moves reference counts, not tuples;
//! * a per-worker [`TimerWheel`] drives protocol timers and the CPU cost
//!   model's delayed departures; its earliest deadline bounds the worker's
//!   park, so idle workers burn no CPU;
//! * a shared [`LinkTable`] (the simulator's fault model behind a lock)
//!   plus a fault-controller thread replay scripted partitions, crashes,
//!   and heals in wall-clock time;
//! * [`deploy_threads`] launches a runtime-independent
//!   [`SystemLayout`](borealis_dpc::SystemLayout) — the very object
//!   `deploy_sim` consumes — so one deployment description serves both
//!   runtimes; the layout's `workers` field (or `BOREALIS_WORKERS`) sizes
//!   the pool.
//!
//! The protocol code itself lives in `borealis-dpc` and is runtime-unaware
//! (see `borealis_dpc::runtime`); this crate only supplies the
//! [`RuntimeCtx`](borealis_dpc::RuntimeCtx) implementation and the pool
//! scaffolding.

#![warn(missing_docs)]

pub mod clock;
#[cfg(not(borealis_model))]
pub mod engine;
// In model builds the engine is compiled out, so the scheduler and the
// stats half of links are reachable only from the model tests — the
// non-test model build would flag them dead.
#[cfg_attr(borealis_model, allow(dead_code))]
pub mod links;
#[cfg_attr(borealis_model, allow(dead_code))]
pub(crate) mod scheduler;
pub mod sync;
#[cfg(not(borealis_model))]
pub mod tcp;
pub mod wheel;

// Model builds (`--cfg borealis_model`) swap the sync facade for the
// virtual primitives of `borealis-check` and compile only the protocol
// cores the model tests exercise (scheduler, links, wheel); the real
// OS-thread engine and TCP fabric need wall clocks and sockets, which
// have no meaning under the interleaving explorer.
#[cfg(all(test, borealis_model))]
mod model_tests;

pub use clock::MonotonicClock;
#[cfg(not(borealis_model))]
pub use engine::ThreadRuntime;
pub use links::{LinkTable, RuntimeStats, StatsSnapshot};
#[cfg(not(borealis_model))]
pub use tcp::{deploy_tcp, plan_processes, RunningTcp, TcpFabric};
pub use wheel::{Due, TimerWheel};

#[cfg(not(borealis_model))]
use borealis_dpc::{MetricsHub, SystemLayout};
#[cfg(not(borealis_model))]
use borealis_types::{NodeId, StreamId};

/// A deployment running under the thread engine.
///
/// The mirror of `borealis_dpc::RunningSystem`: same topology lookup
/// fields, but progress happens in wall-clock time on background threads —
/// [`RunningThreads::run_for`] simply lets it.
#[cfg(not(borealis_model))]
pub struct RunningThreads {
    /// The engine driving the actors.
    pub runtime: ThreadRuntime,
    /// Metrics collected by the client proxy (readable live).
    pub metrics: MetricsHub,
    /// Source actor ids, per stream.
    pub source_ids: Vec<(StreamId, NodeId)>,
    /// Node ids per physical fragment (outer index = physical fragment
    /// index; a sharded group contributes one entry per shard).
    pub fragment_replicas: Vec<Vec<NodeId>>,
    /// Physical fragment indexes per logical fragment, in shard order.
    pub groups: Vec<Vec<usize>>,
    /// The client proxy, if any.
    pub client: Option<NodeId>,
}

#[cfg(not(borealis_model))]
impl RunningThreads {
    /// Lets the system run for `wall` (blocks the caller; the actors run on
    /// the worker pool), then refreshes the metrics hub's transport and
    /// scheduler gauges.
    pub fn run_for(&self, wall: std::time::Duration) {
        self.runtime.run_for(wall);
        self.metrics.record_flow(self.runtime.links().flow_gauges());
        self.metrics.record_sched(self.runtime.sched_gauges());
    }

    /// Queue-depth and stall-time gauges of the transport's credit ledger.
    pub fn flow_gauges(&self) -> borealis_types::FlowGauges {
        self.runtime.links().flow_gauges()
    }

    /// Worker-pool scheduler gauges (steals, run-queue depths, activation
    /// run-time histogram).
    pub fn sched_gauges(&self) -> borealis_types::SchedGauges {
        self.runtime.sched_gauges()
    }

    /// Stops every thread in order and returns message-loss statistics
    /// (including the final transport and scheduler gauges).
    pub fn shutdown(self) -> StatsSnapshot {
        self.metrics.record_flow(self.runtime.links().flow_gauges());
        self.metrics.record_sched(self.runtime.sched_gauges());
        self.runtime.shutdown()
    }
}

/// Launches a resolved [`SystemLayout`] under the thread engine: the
/// wall-clock sibling of `SystemLayout::deploy_sim`.
///
/// The scripted faults lowered by the layout replay at their scripted
/// offsets from runtime start. The pool size is the layout's `workers`
/// field if set (`SystemBuilder::workers`), else the `BOREALIS_WORKERS`
/// environment variable, else a machine-derived default
/// ([`ThreadRuntime::default_workers`]).
#[cfg(not(borealis_model))]
pub fn deploy_threads(layout: SystemLayout) -> RunningThreads {
    let metrics = layout.metrics.clone();
    let actors = layout
        .actors
        .into_iter()
        .map(|spec| spec.into_dpc_actor(&metrics))
        .collect();
    let workers = layout
        .workers
        .unwrap_or_else(ThreadRuntime::default_workers);
    let runtime = ThreadRuntime::spawn_pooled(
        actors,
        layout.script,
        layout.seed,
        layout.partitions,
        layout.flow_policy,
        workers,
    );
    RunningThreads {
        runtime,
        metrics,
        source_ids: layout.source_ids,
        fragment_replicas: layout.fragment_replicas,
        groups: layout.groups,
        client: layout.client,
    }
}

#[cfg(all(test, not(borealis_model)))]
mod tests {
    use super::*;
    use borealis_diagram::{plan_deployment, DeploymentSpec, DpcConfig, QueryBuilder};
    use borealis_dpc::{FaultSpec, SourceConfig, SystemBuilder};
    use borealis_types::{Duration, Time};

    /// End-to-end smoke test: a replicated union pipeline serves real
    /// traffic on OS threads, the client records stable tuples, and a
    /// scripted source disconnection forces tentative data plus a
    /// completed stabilization — DPC running in wall-clock time.
    #[test]
    fn thread_runtime_serves_and_recovers() {
        let mut q = QueryBuilder::new();
        let s1 = q.source("s1");
        let s2 = q.source("s2");
        let u = q.union("u", &[s1, s2]);
        q.output(u);
        let d = q.build().unwrap();
        let cfg = DpcConfig {
            total_delay: Duration::from_millis(400),
            ..DpcConfig::default()
        };
        let p = plan_deployment(&d, &DeploymentSpec::single(2), &cfg).unwrap();
        let (s2, u) = (s2.id(), u.id());
        let layout = SystemBuilder::new(11, Duration::from_millis(1))
            .source(SourceConfig::seq(s1.id(), 200.0))
            .source(SourceConfig::seq(s2, 200.0))
            .plan(p)
            .client_streams(vec![u])
            .fault(FaultSpec::DisconnectSource {
                stream: s2,
                frag: 0,
                from: Time::from_millis(700),
                to: Time::from_millis(1400),
            })
            .layout();
        let sys = deploy_threads(layout);
        sys.run_for(std::time::Duration::from_millis(3200));
        let stats = sys.metrics.with(u, |m| {
            (m.n_stable, m.n_tentative, m.n_rec_done, m.dup_stable)
        });
        let (n_stable, n_tentative, n_rec_done, dup_stable) = stats;
        let drops = sys.shutdown();
        assert!(n_stable > 200, "live traffic flows: {n_stable} stable");
        assert!(
            n_tentative > 0,
            "the disconnection must force tentative output"
        );
        assert!(n_rec_done >= 1, "stabilization must complete");
        assert_eq!(dup_stable, 0, "no duplicate stable tuples");
        assert!(
            drops.send_unreachable_drops > 0,
            "messages into the dead link are counted: {drops:?}"
        );
    }
}
