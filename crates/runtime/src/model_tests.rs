//! Exhaustive interleaving tests for the runtime's core concurrency
//! protocols, run under `borealis-check`'s bounded model checker
//! (`RUSTFLAGS="--cfg borealis_model" cargo test -p borealis-runtime --lib`).
//!
//! Every test explores *all* thread interleavings up to the preemption
//! bound (2 — the CHESS observation: almost all real concurrency bugs
//! need at most two preemptive switches). Four protocols are covered:
//!
//! 1. the mailbox queued-exactly-once state machine ([`Scheduler::push`]);
//! 2. [`IdleLot`] token parking (no lost wakeup, token bank capped);
//! 3. [`FlowControl`] window accounting behind [`LinkTable`]'s ledger lock;
//! 4. crash purge vs in-flight sends (every purged send counted exactly
//!    once as a delivery drop).
//!
//! Each protocol also has a **seeded-bug twin**: a compact
//! reimplementation with one critical line mutated the way a plausible
//! refactor would, checked with [`explore_expect_violation`] — proving
//! the explorer *detects* the class of bug the real code avoids, and
//! printing the replayable trace a real regression would produce.
//!
//! [`FlowControl`]: borealis_sim::FlowControl

use crate::links::{LinkTable, RuntimeStats};
use crate::scheduler::{Envelope, IdleLot, Scheduler};
use crate::sync::{relock, Arc, AtomicU64, Condvar, Mutex, Ordering};
use borealis_check::sync::thread;
use borealis_check::{explore, explore_expect_violation, Opts, Report};
use borealis_dpc::{DpcActor, NetMsg, RuntimeCtx};
use borealis_sim::FaultEvent;
use borealis_types::{CreditPolicy, NodeId, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

struct Inert;
impl DpcActor for Inert {
    fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, _from: NodeId, _msg: NetMsg) {}
    fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, _kind: u64) {}
}

fn sched(n_actors: usize, workers: usize) -> Scheduler {
    let actors = (0..n_actors)
        .map(|i| {
            (
                Box::new(Inert) as Box<dyn DpcActor>,
                StdRng::seed_from_u64(i as u64),
            )
        })
        .collect();
    Scheduler::new(actors, workers)
}

/// Drains the initial seeding so every task is Idle.
fn drain_initial(s: &Scheduler) {
    for w in 0..s.workers() {
        while let Some(t) = s.pop(w) {
            t.begin();
            while t.pop_envelope().is_some() {}
        }
    }
}

fn data_msg() -> NetMsg {
    NetMsg::Data {
        stream: borealis_types::StreamId(0),
        tuples: borealis_types::TupleBatch::single(borealis_types::Tuple::boundary(
            borealis_types::TupleId::NONE,
            Time::ZERO,
        ))
        .into(),
    }
}

/// State-space sizes land in `BENCH_PR8.json`; collect them with
/// `-- --nocapture`.
fn report(name: &str, r: Report) {
    println!(
        "model-state-space {name}: executions={} bound={} depth={}",
        r.executions, r.preemption_bound, r.max_branch_depth
    );
}

// ---------------------------------------------------------------------------
// Protocol 1: the mailbox queued-exactly-once machine
// ---------------------------------------------------------------------------

/// Two concurrent pushers against one parked worker: every envelope is
/// processed exactly once, the task is never double-enqueued (the
/// `begin()` debug assert fires on a second run-queue entry), and the
/// worker never misses a wakeup (a lost one deadlocks the exploration,
/// which the checker reports).
#[test]
fn model_mailbox_queued_exactly_once() {
    let r = explore(Opts::default(), || {
        let s = Arc::new(sched(1, 1));
        drain_initial(&s);
        let s1 = Arc::clone(&s);
        let p1 = thread::spawn(move || s1.push(NodeId(0), Envelope::Timer(1), None));
        let s2 = Arc::clone(&s);
        let p2 = thread::spawn(move || s2.push(NodeId(0), Envelope::Timer(2), None));
        // The worker loop: drain, then park on the IdleLot like the real
        // engine — a lost wakeup shows up as a deadlock violation.
        let mut seen: Vec<u64> = Vec::new();
        while seen.len() < 2 {
            match s.pop(0) {
                Some(t) => {
                    t.begin();
                    while let Some(env) = t.pop_envelope() {
                        match env {
                            Envelope::Timer(k) => seen.push(k),
                            _ => unreachable!("only timers pushed"),
                        }
                    }
                }
                None => s.park(None),
            }
        }
        p1.join();
        p2.join();
        seen.sort_unstable();
        assert_eq!(seen, [1, 2], "each envelope delivered exactly once");
        assert!(s.pop(0).is_none(), "no residual run-queue entry");
    });
    report("mailbox_queued_exactly_once", r);
}

/// Seeded-bug twin of [`Scheduler::push`]: the Idle→Queued decision is
/// made *after* the mailbox lock is dropped (the real code flips the state
/// under the same lock that appends the envelope — `scheduler.rs`,
/// `push()`). Two pushers can then both observe Idle and enqueue twice.
#[test]
fn model_mailbox_double_enqueue_twin_is_caught() {
    struct TwinSched {
        /// (mailbox queue, queued-or-running flag).
        mailbox: Mutex<(VecDeque<u64>, bool)>,
        /// Run-queue entries for the one task.
        runq: Mutex<Vec<u8>>,
    }
    impl TwinSched {
        fn buggy_push(&self, v: u64) {
            let was_idle = {
                let mut mb = relock(&self.mailbox);
                mb.0.push_back(v);
                !mb.1
            };
            // BUG: the decision leaves the critical section before the
            // state flips — a second pusher interleaving here also sees
            // Idle and enqueues the task again.
            if was_idle {
                relock(&self.mailbox).1 = true;
                relock(&self.runq).push(1);
            }
        }
    }
    let msg = explore_expect_violation(Opts::default(), || {
        let s = Arc::new(TwinSched {
            mailbox: Mutex::new((VecDeque::new(), false)),
            runq: Mutex::new(Vec::new()),
        });
        let s1 = Arc::clone(&s);
        let p1 = thread::spawn(move || s1.buggy_push(1));
        let s2 = Arc::clone(&s);
        let p2 = thread::spawn(move || s2.buggy_push(2));
        p1.join();
        p2.join();
        assert!(relock(&s.runq).len() <= 1, "task enqueued more than once");
    });
    assert!(
        msg.contains("BOREALIS_MODEL_REPLAY"),
        "violation trace is replayable: {msg}"
    );
    println!("seeded double-enqueue trace:\n{msg}");
}

// ---------------------------------------------------------------------------
// Protocol 2: IdleLot token parking
// ---------------------------------------------------------------------------

/// Two parkers against three wake deposits (cap 2): no wakeup is ever
/// lost (both parks return in every interleaving — a loss deadlocks the
/// exploration) and the token bank never exceeds the cap (debug-asserted
/// inside `unpark_one`; at most one token can remain banked).
#[test]
fn model_idlelot_no_lost_wakeup_no_herd() {
    let r = explore(Opts::default(), || {
        let lot = Arc::new(IdleLot::new(2));
        let l1 = Arc::clone(&lot);
        let p1 = thread::spawn(move || l1.park(None));
        let l2 = Arc::clone(&lot);
        let p2 = thread::spawn(move || l2.park(None));
        lot.unpark_one();
        lot.unpark_one();
        lot.unpark_one(); // over-deposit: capped, not banked
        p1.join();
        p2.join();
        // 3 deposits capped at 2, 2 consumed: at most one token can remain
        // — a bank above that would wake workers with nothing to scan for.
        assert!(lot.banked() <= 1, "token bank exceeds deposits minus parks");
    });
    report("idlelot_no_lost_wakeup_no_herd", r);
}

/// Seeded-bug twin of [`IdleLot::park`]: a condvar sleep with no banked
/// token to consume first (the real code checks `*t > 0` before waiting —
/// `scheduler.rs`, `IdleLot::park`). A deposit landing before the sleep
/// is then lost and the parker never wakes: a deadlock the checker finds.
#[test]
fn model_idlelot_tokenless_twin_loses_wakeup() {
    struct TokenlessLot {
        m: Mutex<()>,
        cv: Condvar,
    }
    let msg = explore_expect_violation(Opts::default(), || {
        let lot = Arc::new(TokenlessLot {
            m: Mutex::new(()),
            cv: Condvar::new(),
        });
        let l = Arc::clone(&lot);
        let parker = thread::spawn(move || {
            let g = relock(&l.m);
            // BUG: no token check before the wait — a notify that already
            // happened is gone (condvars have no memory).
            let _g = l.cv.wait(g);
        });
        lot.cv.notify_one();
        parker.join();
    });
    assert!(
        msg.contains("BOREALIS_MODEL_REPLAY"),
        "violation trace is replayable: {msg}"
    );
    println!("seeded lost-wakeup trace:\n{msg}");
}

// ---------------------------------------------------------------------------
// Protocol 3: FlowControl window accounting behind the ledger lock
// ---------------------------------------------------------------------------

/// A sender and a consumer race on one Window(1) link: the in-flight
/// count never exceeds the window, no credit is double-replenished, and
/// the queue-depth gauges equal the actual ledger totals
/// (`FlowControl::check_invariants` runs inside every [`LinkTable`] op in
/// debug builds — which every model interleaving is).
#[test]
fn model_flow_window_accounting() {
    let r = explore(Opts::default(), || {
        let t = Arc::new(LinkTable::with_config(Vec::new(), CreditPolicy::Window(1)));
        let (a, b) = (NodeId(0), NodeId(1));
        let t1 = Arc::clone(&t);
        let sender = thread::spawn(move || {
            t1.admit(a, b, data_msg(), Time::ZERO);
            t1.admit(a, b, data_msg(), Time::ZERO);
        });
        let t2 = Arc::clone(&t);
        let consumer = thread::spawn(move || {
            t2.consumed_release(a, b, Time::ZERO);
        });
        sender.join();
        consumer.join();
        let g = t.flow_gauges();
        assert!(g.inflight_peak <= 1, "credit window exceeded: {g:?}");
        assert_eq!(
            g.delivered + g.queued,
            2,
            "each admit exactly once delivered or queued: {g:?}"
        );
        assert_eq!(
            g.queued_now,
            g.queued - g.released,
            "no double-replenish: {g:?}"
        );
    });
    report("flow_window_accounting", r);
}

/// Seeded-bug twin of the ledger's window check: `FlowControl::admit`'s
/// `link.inflight < w` test is safe only because [`LinkTable::admit`]
/// holds the ledger mutex across check *and* increment — split into two
/// atomic ops (as lock-free "optimization" would), two senders both pass
/// the check and the window is exceeded.
#[test]
fn model_flow_check_then_act_twin_exceeds_window() {
    struct BuggyLedger {
        inflight: AtomicU64,
    }
    impl BuggyLedger {
        fn buggy_admit(&self) {
            // BUG: check-then-act across two atomics instead of one
            // critical section (links.rs `admit` wraps both in the lock).
            if self.inflight.load(Ordering::SeqCst) < 1 {
                self.inflight.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let msg = explore_expect_violation(Opts::default(), || {
        let l = Arc::new(BuggyLedger {
            inflight: AtomicU64::new(0),
        });
        let l1 = Arc::clone(&l);
        let s1 = thread::spawn(move || l1.buggy_admit());
        let l2 = Arc::clone(&l);
        let s2 = thread::spawn(move || l2.buggy_admit());
        s1.join();
        s2.join();
        assert!(
            l.inflight.load(Ordering::SeqCst) <= 1,
            "credit window exceeded"
        );
    });
    assert!(
        msg.contains("BOREALIS_MODEL_REPLAY"),
        "violation trace is replayable: {msg}"
    );
    println!("seeded window-overrun trace:\n{msg}");
}

// ---------------------------------------------------------------------------
// Protocol 4: crash purge vs in-flight sends
// ---------------------------------------------------------------------------

/// A sender races a node crash on its link: however the purge interleaves
/// with the admits, every send ends up in exactly one bucket — delivered,
/// purged (counted as a delivery drop, as the engine's fault controller
/// does), or still queued. Nothing is dropped twice and nothing vanishes.
#[test]
fn model_crash_purge_counts_each_send_once() {
    let r = explore(Opts::default(), || {
        let t = Arc::new(LinkTable::with_config(Vec::new(), CreditPolicy::Window(1)));
        let stats = Arc::new(RuntimeStats::default());
        let (a, b) = (NodeId(0), NodeId(1));
        let t1 = Arc::clone(&t);
        let sender = thread::spawn(move || {
            for _ in 0..3 {
                t1.admit(a, b, data_msg(), Time::ZERO);
            }
        });
        let t2 = Arc::clone(&t);
        let st = Arc::clone(&stats);
        let crasher = thread::spawn(move || {
            // The engine's fault-controller line: purge count becomes
            // delivery drops in one motion (engine.rs `fault_loop`).
            st.count_delivery_drops(t2.apply(&FaultEvent::NodeDown(b), Time::ZERO));
        });
        sender.join();
        crasher.join();
        let g = t.flow_gauges();
        assert_eq!(
            g.delivered + g.queued,
            3,
            "every send admitted or queued exactly once: {g:?}"
        );
        assert_eq!(
            g.queued,
            g.released + g.purged + g.queued_now,
            "every queued send released, purged, or still pending: {g:?}"
        );
        assert_eq!(
            stats.snapshot().delivery_drops,
            g.purged,
            "every purged send counted exactly once as a delivery drop"
        );
    });
    report("crash_purge_counts_each_send_once", r);
}

/// Seeded-bug twin of [`LinkTable::apply`]'s NodeDown arm: the purge
/// count read in one critical section, the purge done in another (the
/// real code computes the count *inside* the ledger lock — links.rs,
/// `apply`). A send landing in the gap is purged but never counted.
#[test]
fn model_crash_purge_outside_lock_twin_drops_counts() {
    struct TwinLedger {
        q: Mutex<VecDeque<u64>>,
        drops: AtomicU64,
    }
    impl TwinLedger {
        fn buggy_purge(&self) {
            // BUG: count and clear in two separate lock acquisitions.
            let n = relock(&self.q).len() as u64;
            relock(&self.q).clear();
            self.drops.fetch_add(n, Ordering::SeqCst);
        }
    }
    let msg = explore_expect_violation(Opts::default(), || {
        let l = Arc::new(TwinLedger {
            q: Mutex::new(VecDeque::new()),
            drops: AtomicU64::new(0),
        });
        let l1 = Arc::clone(&l);
        let sender = thread::spawn(move || l1.q.lock().push_back(7));
        let l2 = Arc::clone(&l);
        let crasher = thread::spawn(move || l2.buggy_purge());
        sender.join();
        crasher.join();
        let still_queued = relock(&l.q).len() as u64;
        assert_eq!(
            l.drops.load(Ordering::SeqCst) + still_queued,
            1,
            "the send must be counted dropped or still queued, exactly once"
        );
    });
    assert!(
        msg.contains("BOREALIS_MODEL_REPLAY"),
        "violation trace is replayable: {msg}"
    );
    println!("seeded purge-undercount trace:\n{msg}");
}

// ---------------------------------------------------------------------------
// Panic containment (engine.rs `run_task` Err arm, modeled)
// ---------------------------------------------------------------------------

/// The worker's panic path — `mark_stopped` while the task is Running —
/// races a concurrent pusher: the dead mailbox drops pushes instead of
/// deadlocking or re-queueing, and the scheduler keeps serving the
/// healthy task in every interleaving.
#[test]
fn model_panic_containment_stops_mailbox_not_worker() {
    let r = explore(Opts::default(), || {
        let s = Arc::new(sched(2, 1));
        drain_initial(&s);
        s.push(NodeId(0), Envelope::Timer(1), None);
        let t = s.pop(0).expect("queued");
        t.begin();
        let s2 = Arc::clone(&s);
        let racer = thread::spawn(move || s2.push(NodeId(0), Envelope::Timer(9), None));
        let _ = t.pop_envelope();
        // The panic path runs while the task is still Running, exactly as
        // engine.rs does after catch_unwind — the racer's push lands in a
        // Running mailbox (append only) or after the stop (dropped);
        // neither re-queues the task.
        assert!(t.mark_stopped());
        racer.join();
        assert!(s.pop(0).is_none(), "dead task never re-queued");
        s.push(NodeId(0), Envelope::Timer(3), None);
        assert!(s.pop(0).is_none(), "pushes to the stopped task dropped");
        // The pool keeps scheduling the healthy sibling.
        s.push(NodeId(1), Envelope::Timer(2), None);
        let healthy = s.pop(0).expect("healthy task still schedulable");
        assert_eq!(healthy.id, NodeId(1));
        healthy.begin();
        assert!(matches!(healthy.pop_envelope(), Some(Envelope::Timer(2))));
        assert!(healthy.pop_envelope().is_none());
    });
    report("panic_containment_stops_mailbox_not_worker", r);
}
