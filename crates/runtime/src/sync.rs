//! The sync facade: every synchronization primitive used by this crate,
//! in one place.
//!
//! **The facade rule:** code in `crates/runtime` never names `std::sync`
//! directly — it imports from `crate::sync`. In normal builds everything
//! here is a zero-cost re-export of `std::sync`; under `--cfg
//! borealis_model` the same names resolve to the instrumented virtual
//! primitives from [`borealis_check::sync`], so the model checker can
//! enumerate interleavings of the real scheduler/ledger code. The rule is
//! enforced by a source-level lint (`cargo run -p borealis-check --bin
//! lint`, run in CI): a direct `std::sync` use outside this module fails
//! the build, because it would silently escape the model.
//!
//! The facade is also where the **poisoned-lock policy** lives: the
//! runtime's state machines guarantee exclusive access (a task is Running
//! on at most one worker), so a panic that poisoned a lock left no torn
//! invariant behind — every acquisition goes through [`relock`] /
//! [`read`] / [`write`] / [`cv_wait`] / [`cv_wait_timeout`], which strip
//! the `PoisonError` in one place instead of ad-hoc `unwrap_or_else`
//! calls at every site. (The virtual primitives don't poison at all — a
//! model execution dies as a whole — so the helpers keep one signature
//! across both builds.)

#[cfg(not(borealis_model))]
mod imp {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::mpsc;
    use std::sync::PoisonError;
    pub use std::sync::{
        Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };
    use std::time::Duration;

    /// Locks a mutex, tolerating poisoning (see module docs).
    pub fn relock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes a shared rwlock guard, tolerating poisoning.
    pub fn read<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
        l.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes an exclusive rwlock guard, tolerating poisoning.
    pub fn write<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
        l.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Condvar wait, tolerating poisoning.
    pub fn cv_wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    /// Condvar wait with timeout; the second return value is `true` if
    /// the wait timed out.
    pub fn cv_wait_timeout<'a, T>(
        cv: &Condvar,
        g: MutexGuard<'a, T>,
        d: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (g, r) = cv
            .wait_timeout(g, d)
            .unwrap_or_else(PoisonError::into_inner);
        (g, r.timed_out())
    }
}

#[cfg(borealis_model)]
mod imp {
    pub use borealis_check::sync::thread;
    pub use borealis_check::sync::{
        AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard,
        RwLockWriteGuard,
    };
    pub use std::sync::atomic::Ordering;
    pub use std::sync::Arc;
    use std::time::Duration;

    /// Locks a virtual mutex (no poisoning in the model).
    pub fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock()
    }

    /// Takes a shared virtual rwlock guard.
    pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
        l.read()
    }

    /// Takes an exclusive virtual rwlock guard.
    pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
        l.write()
    }

    /// Virtual condvar wait.
    pub fn cv_wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        cv.wait(g)
    }

    /// Virtual condvar wait where the timeout is a scheduling choice of
    /// the explorer (the duration itself is ignored).
    pub fn cv_wait_timeout<'a, T>(
        cv: &Condvar,
        g: MutexGuard<'a, T>,
        d: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        cv.wait_timeout(g, d)
    }
}

pub use imp::*;
