//! The monotonic wall clock shared by every thread of a runtime.

use borealis_types::Time;
use std::time::Instant;

/// Maps `std::time::Instant` onto the protocol's [`Time`] axis: zero at
/// runtime start, microsecond resolution — the same axis the simulator
/// uses for virtual time, so tuning knobs (`heartbeat_period`,
/// `stale_timeout`, …) mean the same thing under both runtimes.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// Starts the clock: `now()` is zero at this instant.
    pub fn start() -> MonotonicClock {
        MonotonicClock {
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since the runtime started.
    pub fn now(&self) -> Time {
        Time(self.start.elapsed().as_micros() as u64)
    }

    /// Std-duration until `at` (zero if already past).
    pub fn until(&self, at: Time) -> std::time::Duration {
        let now = self.now();
        std::time::Duration::from_micros(at.as_micros().saturating_sub(now.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_starts_at_zero() {
        let c = MonotonicClock::start();
        let a = c.now();
        let b = c.now();
        assert!(a <= b);
        assert!(a.as_micros() < 1_000_000, "fresh clock is near zero");
    }

    #[test]
    fn until_saturates_for_past_instants() {
        let c = MonotonicClock::start();
        assert_eq!(c.until(Time::ZERO), std::time::Duration::ZERO);
        assert!(c.until(Time::from_secs(3600)) > std::time::Duration::from_secs(3000));
    }
}
