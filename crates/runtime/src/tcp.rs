//! The socket transport: one `SystemLayout` deployed across OS processes,
//! with the credit protocol carried on a zero-copy binary wire.
//!
//! Each process runs the same worker-pool engine ([`crate::engine`]) over
//! the *same* actor id space; a process plan (`actor index → process`)
//! decides which actors are live locally and which are inert
//! [`RemoteStub`]s. Sends to remote actors are encoded **straight from the
//! `Arc`'d batch into the destination connection's shared write buffer**
//! (`borealis_dpc::encode_frame` appends in place — no intermediate
//! message allocation), where they coalesce with every other frame queued
//! since the last flush; a dedicated writer thread swaps the buffer out
//! under the lock and drains it with as few `write` syscalls as the kernel
//! allows, so heartbeats, acks, and grants amortize into one syscall
//! (see [`WireGauges::frames_per_flush`]).
//!
//! **Credits cross the wire.** The sending process's [`LinkTable`] credit
//! ledger *is* the wire window: a `Data` frame debits it at `admit` time
//! exactly as an in-process send would, and the receiving process returns
//! the credit with an explicit `CreditGrant` frame (replacing the
//! in-process `Replenish` wheel entry) whose header names the data link
//! `from → to`. On grant receipt the sender releases the next queued
//! message from its own ledger and puts it on the wire. Because the ledger
//! is sender-side, a receiver cannot observe its own inbound stall
//! locally; the sender reports it with `StallReport` frames (micros
//! stalled so far, `0` = drained) that the receiver extrapolates in
//! [`TcpFabric::remote_stalled_for`] — so SUnion's `inbound_stall` probe
//! and the §6 delay budget work unchanged across the wire.
//!
//! **Connection reset = crash.** A torn connection (read error, EOF
//! without a `Goodbye` frame, or a corrupt frame) marks every actor of the
//! dead peer process `NodeDown` in the local link table: queued
//! credit-stalled sends purge as counted delivery drops and later sends
//! count as send drops — the same `FlowGauges`/`StatsSnapshot` surface the
//! scripted fault controller feeds, so the chaos semantics of the two
//! transports are identical. The scripted fault script itself replays in
//! *every* process against its own link table, which keeps reachability
//! decisions consistent without any cross-process coordination.
//!
//! **Crashed processes may come back.** Every process keeps its listener
//! open on a persistent acceptor thread; a respawned worker re-dials the
//! whole mesh ([`TcpFabric::establish_rejoin`]) and each survivor installs
//! the fresh connection in the torn slot and marks the rejoiner's actors
//! back up. The rejoined process recovers its *protocol* state itself
//! (checkpoint + input-log replay from its durable store, then
//! re-subscription) — the fabric only restores connectivity.

use crate::clock::MonotonicClock;
use crate::engine::ThreadRuntime;
use crate::links::{LinkTable, RuntimeStats, StatsSnapshot};
use crate::scheduler::{Envelope, Scheduler};
use crate::sync::{cv_wait, read, relock, write};
use crate::sync::{Arc, AtomicBool, AtomicU64, Condvar, Mutex, Ordering, RwLock};
use borealis_dpc::{
    decode_frame, encode_frame, DpcActor, MetricsHub, NetMsg, RuntimeCtx, SystemLayout, WireMsg,
};
use borealis_sim::FaultEvent;
use borealis_types::{Duration, NodeId, StreamId, Time, WireGauges};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-connection wire counters (relaxed atomics; exact after shutdown,
/// like [`RuntimeStats`]).
#[derive(Default)]
struct ConnGauges {
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    frames_sent: AtomicU64,
    frames_recv: AtomicU64,
    flushes: AtomicU64,
    grants_sent: AtomicU64,
    grants_recv: AtomicU64,
    stall_reports: AtomicU64,
    purged: AtomicU64,
    resets: AtomicU64,
}

/// The coalescing write buffer of one connection: frames append here under
/// the lock and the writer thread swaps the whole thing out per flush.
struct WriteSide {
    buf: Vec<u8>,
    frames: u64,
    /// Orderly shutdown requested: flush what is queued (the last frame is
    /// the `Goodbye`), then shut the write half down.
    closing: bool,
}

/// One established connection to a peer process.
struct Conn {
    peer_proc: u32,
    stream: TcpStream,
    write: Mutex<WriteSide>,
    wake: Condvar,
    /// Cleared exactly once, by reset or clean close.
    alive: AtomicBool,
    /// The peer announced an orderly close (`Goodbye` frame) — a
    /// subsequent EOF is a clean teardown, not a crash.
    peer_goodbye: AtomicBool,
    /// Bytes read past the `Hello` frame during the handshake, replayed to
    /// the reader thread.
    carry: Mutex<Vec<u8>>,
    g: ConnGauges,
}

impl Conn {
    fn new(peer_proc: u32, stream: TcpStream, carry: Vec<u8>) -> Conn {
        Conn {
            peer_proc,
            stream,
            write: Mutex::new(WriteSide {
                buf: Vec::with_capacity(16 * 1024),
                frames: 0,
                closing: false,
            }),
            wake: Condvar::new(),
            alive: AtomicBool::new(true),
            peer_goodbye: AtomicBool::new(false),
            carry: Mutex::new(carry),
            g: ConnGauges::default(),
        }
    }

    /// Appends one frame to the shared write buffer (the closure encodes
    /// in place — zero intermediate copies) and wakes the writer. Refused
    /// (`false`) once the connection is dead or closing: the frame is a
    /// counted drop at the caller.
    fn enqueue(&self, encode: impl FnOnce(&mut Vec<u8>)) -> bool {
        let mut ws = relock(&self.write);
        if !self.alive.load(Ordering::Acquire) || ws.closing {
            return false;
        }
        encode(&mut ws.buf);
        ws.frames += 1;
        drop(ws);
        self.wake.notify_one();
        true
    }

    /// Marks the connection dead and unblocks the writer. Returns `true`
    /// exactly once — the caller owning that edge runs the crash
    /// accounting.
    fn mark_dead(&self) -> bool {
        let was_alive = self.alive.swap(false, Ordering::AcqRel);
        let mut ws = relock(&self.write);
        ws.closing = true;
        drop(ws);
        self.wake.notify_all();
        was_alive
    }
}

/// The writer thread: parks until frames are queued, swaps the coalesced
/// buffer out under the lock, and drains it — every frame queued since the
/// last flush shares the syscall(s) of this one.
fn writer_loop(conn: Arc<Conn>) {
    let mut local: Vec<u8> = Vec::with_capacity(16 * 1024);
    loop {
        let (frames, closing) = {
            let mut ws = relock(&conn.write);
            while ws.buf.is_empty() && !ws.closing {
                ws = cv_wait(&conn.wake, ws);
            }
            std::mem::swap(&mut local, &mut ws.buf);
            (std::mem::take(&mut ws.frames), ws.closing)
        };
        if !local.is_empty() {
            let total = local.len() as u64;
            let mut off = 0usize;
            let ok = loop {
                if off >= local.len() {
                    break true;
                }
                match (&conn.stream).write(&local[off..]) {
                    Ok(0) => break false,
                    Ok(n) => off += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break false,
                }
            };
            local.clear();
            if ok {
                conn.g.flushes.fetch_add(1, Ordering::Relaxed);
                conn.g.frames_sent.fetch_add(frames, Ordering::Relaxed);
                conn.g.bytes_sent.fetch_add(total, Ordering::Relaxed);
            } else {
                // The reader observes the same torn socket and runs the
                // reset accounting; the writer just stops.
                return;
            }
        }
        if closing {
            let _ = conn.stream.shutdown(Shutdown::Write);
            return;
        }
    }
}

/// Placeholder for an actor living in another process: it receives
/// nothing (sends to it travel the wire) and is stopped right after
/// deployment.
struct RemoteStub;

impl DpcActor for RemoteStub {
    fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, _from: NodeId, _msg: NetMsg) {}
    fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, _kind: u64) {}
}

/// What the acceptor thread needs to wire a rejoining peer's connection
/// into the running engine: handed to the fabric by
/// [`TcpFabric::start_io`].
#[derive(Clone)]
struct IoCtx {
    sched: Arc<Scheduler>,
    links: Arc<LinkTable>,
    stats: Arc<RuntimeStats>,
    clock: MonotonicClock,
}

/// The per-process socket fabric: one connection per peer process, the
/// process plan, and the cross-process stall bookkeeping.
pub struct TcpFabric {
    my_proc: u32,
    /// `plan[actor index] = process id` — identical in every process.
    plan: Vec<u32>,
    /// Indexed by process id; `None` for `my_proc`. Slots are writable
    /// because a killed peer process may respawn and re-dial mid-run: the
    /// acceptor thread installs the fresh connection in place.
    conns: Vec<RwLock<Option<Arc<Conn>>>>,
    /// Connections replaced by a rejoin, kept for their wire gauges.
    retired: Mutex<Vec<Arc<Conn>>>,
    /// The listener, parked here between `establish` and `start_io`
    /// (which moves it into the acceptor thread).
    listener: Mutex<Option<TcpListener>>,
    /// Engine hooks for mid-run connection installs; set by `start_io`.
    ioctx: Mutex<Option<IoCtx>>,
    /// Orderly shutdown: stops the acceptor and refuses late installs.
    closing: AtomicBool,
    /// Sender side: links `from → to` whose stall we have reported to the
    /// remote receiver and not yet retracted with a `StallReport{0}`.
    reported_stalls: Mutex<HashSet<(u32, u32)>>,
    /// Receiver side: last stall report per remote link, as
    /// `(micros reported, receipt instant)` — extrapolated on read.
    remote_stalls: Mutex<HashMap<(u32, u32), (u64, Instant)>>,
    io: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpFabric {
    /// Establishes the full connection mesh for `my_proc` and returns the
    /// fabric. `addrs[p]` is process `p`'s listen address (an explicit
    /// `host:port` map every process receives up front — no port
    /// handshake); `plan` maps every actor index to its process.
    ///
    /// Dial direction is deterministic — the higher process id dials the
    /// lower and identifies itself with a `Hello` frame — so exactly one
    /// connection exists per process pair. Dialing retries with bounded
    /// exponential backoff for ~10 s (peers may still be binding);
    /// accepting waits up to 30 s for the `Hello`. No process returns
    /// until its whole mesh is up, which makes `establish` double as a
    /// start barrier for multi-process runs.
    pub fn establish(
        my_proc: u32,
        listener: TcpListener,
        addrs: &[String],
        plan: Vec<u32>,
    ) -> std::io::Result<Arc<TcpFabric>> {
        let procs = addrs.len() as u32;
        let mut conns: Vec<Option<Arc<Conn>>> = (0..procs).map(|_| None).collect();
        // Dial every lower peer, announcing who we are.
        for p in 0..my_proc {
            conns[p as usize] = Some(dial_peer(my_proc, p, &addrs[p as usize])?);
        }
        // Accept every higher peer; the Hello tells us which one dialed.
        let higher = procs.saturating_sub(my_proc + 1);
        for _ in 0..higher {
            let (stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
            let (peer, carry) = read_hello(&stream)?;
            stream.set_read_timeout(None)?;
            if peer <= my_proc || peer >= procs || conns[peer as usize].is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected hello from process {peer}"),
                ));
            }
            conns[peer as usize] = Some(Arc::new(Conn::new(peer, stream, carry)));
        }
        Ok(Self::assemble(my_proc, listener, plan, conns))
    }

    /// Establishes the mesh for a process **rejoining** a running system
    /// (a respawned worker): instead of the dial-lower/accept-higher
    /// split, the rejoiner dials *every* peer — each survivor's acceptor
    /// thread reads the `Hello`, installs the fresh connection in the
    /// torn slot, and marks the rejoiner's actors back up.
    pub fn establish_rejoin(
        my_proc: u32,
        listener: TcpListener,
        addrs: &[String],
        plan: Vec<u32>,
    ) -> std::io::Result<Arc<TcpFabric>> {
        let procs = addrs.len() as u32;
        let mut conns: Vec<Option<Arc<Conn>>> = (0..procs).map(|_| None).collect();
        for p in (0..procs).filter(|p| *p != my_proc) {
            conns[p as usize] = Some(dial_peer(my_proc, p, &addrs[p as usize])?);
        }
        Ok(Self::assemble(my_proc, listener, plan, conns))
    }

    fn assemble(
        my_proc: u32,
        listener: TcpListener,
        plan: Vec<u32>,
        conns: Vec<Option<Arc<Conn>>>,
    ) -> Arc<TcpFabric> {
        Arc::new(TcpFabric {
            my_proc,
            plan,
            conns: conns.into_iter().map(RwLock::new).collect(),
            retired: Mutex::new(Vec::new()),
            listener: Mutex::new(Some(listener)),
            ioctx: Mutex::new(None),
            closing: AtomicBool::new(false),
            reported_stalls: Mutex::new(HashSet::new()),
            remote_stalls: Mutex::new(HashMap::new()),
            io: Mutex::new(Vec::new()),
        })
    }

    /// This fabric's process id.
    pub fn my_proc(&self) -> u32 {
        self.my_proc
    }

    /// The process hosting `id`.
    pub fn proc_of(&self, id: NodeId) -> u32 {
        self.plan[id.index()]
    }

    /// True when `id` lives in another process (its sends travel the
    /// wire; its local task is an inert stub).
    pub fn is_remote(&self, id: NodeId) -> bool {
        self.proc_of(id) != self.my_proc
    }

    fn conn_to(&self, id: NodeId) -> Option<Arc<Conn>> {
        read(&self.conns[self.proc_of(id) as usize]).clone()
    }

    /// Encodes `msg` into the write buffer of `to`'s process connection.
    /// `false` means the connection is down: the caller counts the drop.
    pub(crate) fn send_net(&self, from: NodeId, to: NodeId, msg: NetMsg) -> bool {
        match self.conn_to(to) {
            Some(conn) => conn.enqueue(|buf| {
                encode_frame(buf, from, to, &WireMsg::Net(msg));
            }),
            None => false,
        }
    }

    /// Returns one consumed delivery's credit to the remote sender: a
    /// `CreditGrant` frame whose header names the data link `from → to`
    /// (`from` = the remote sender whose ledger holds the window).
    pub(crate) fn send_grant(&self, from: NodeId, to: NodeId) {
        if let Some(conn) = self.conn_to(from) {
            if conn.enqueue(|buf| {
                encode_frame(buf, from, to, &WireMsg::CreditGrant);
            }) {
                conn.g.grants_sent.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Sender side: a data message to remote `to` just queued in the local
    /// ledger. Report the stall so the receiver's `inbound_stall` probe
    /// sees it.
    pub(crate) fn note_queued(&self, from: NodeId, to: NodeId, stalled: Duration) {
        relock(&self.reported_stalls).insert((from.0, to.0));
        if let Some(conn) = self.conn_to(to) {
            conn.enqueue(|buf| {
                encode_frame(
                    buf,
                    from,
                    to,
                    &WireMsg::StallReport {
                        micros: stalled.as_micros(),
                    },
                );
            });
        }
    }

    /// Sender side, on grant receipt: if the link's stall episode ended
    /// (queue drained), retract the report with a `StallReport{0}`.
    fn clear_stall_if_drained(&self, links: &LinkTable, from: NodeId, to: NodeId, now: Time) {
        if links.stalled_for(from, to, now) != Duration::ZERO {
            return;
        }
        if !relock(&self.reported_stalls).remove(&(from.0, to.0)) {
            return;
        }
        if let Some(conn) = self.conn_to(to) {
            conn.enqueue(|buf| {
                encode_frame(buf, from, to, &WireMsg::StallReport { micros: 0 });
            });
        }
    }

    /// Receiver side: records (or retracts, `micros == 0`) a sender's
    /// stall report for the link `from → to`.
    fn note_remote_stall(&self, from: NodeId, to: NodeId, micros: u64) {
        let mut map = relock(&self.remote_stalls);
        if micros == 0 {
            map.remove(&(from.0, to.0));
        } else {
            map.insert((from.0, to.0), (micros, Instant::now()));
        }
    }

    /// Continuous inbound credit-stall of the remote link `from → to`, as
    /// last reported by the sender and extrapolated since receipt — the
    /// cross-process analogue of [`LinkTable::stalled_for`].
    pub fn remote_stalled_for(&self, from: NodeId, to: NodeId) -> Duration {
        match relock(&self.remote_stalls).get(&(from.0, to.0)) {
            Some((micros, at)) => Duration::from_micros(micros + at.elapsed().as_micros() as u64),
            None => Duration::ZERO,
        }
    }

    /// Crash accounting for a torn connection: every actor of the dead
    /// peer process goes `NodeDown` in the local link table (queued
    /// credit-stalled sends purge as counted delivery drops; later sends
    /// become send drops), and every live local actor is notified so it
    /// drops the subscription state the dead process held for it. Without
    /// the notification a peer that restarts *faster* than the keep-alive
    /// staleness window leaves its consumers subscribed to a node that no
    /// longer knows them — a dangling subscription that silences the
    /// stream forever.
    fn reset_conn(&self, conn: &Conn, links: &LinkTable, stats: &RuntimeStats, now: Time) {
        if !conn.mark_dead() {
            return;
        }
        conn.g.resets.fetch_add(1, Ordering::Relaxed);
        let mut purged = 0u64;
        let mut dead: Vec<NodeId> = Vec::new();
        for (i, proc) in self.plan.iter().enumerate() {
            if *proc == conn.peer_proc {
                let id = NodeId(i as u32);
                purged += links.apply(&FaultEvent::NodeDown(id), now);
                dead.push(id);
            }
        }
        conn.g.purged.fetch_add(purged, Ordering::Relaxed);
        stats.count_delivery_drops(purged);
        if let Some(ctx) = relock(&self.ioctx).clone() {
            for (l, proc) in self.plan.iter().enumerate() {
                let local = NodeId(l as u32);
                if *proc != self.my_proc || !ctx.links.node_up(local) {
                    continue;
                }
                for &d in &dead {
                    ctx.sched
                        .push(local, Envelope::Fault(FaultEvent::NodeDown(d)), None);
                }
            }
        }
    }

    /// Spawns the per-connection reader and writer threads plus the
    /// persistent acceptor (which admits rejoining peers mid-run). Called
    /// by the engine once the scheduler exists; incoming frames push
    /// straight into the destination task's mailbox.
    pub(crate) fn start_io(
        self: &Arc<Self>,
        sched: Arc<Scheduler>,
        links: Arc<LinkTable>,
        stats: Arc<RuntimeStats>,
        clock: MonotonicClock,
    ) {
        let ctx = IoCtx {
            sched,
            links,
            stats,
            clock,
        };
        *relock(&self.ioctx) = Some(ctx.clone());
        for slot in &self.conns {
            if let Some(conn) = read(slot).clone() {
                self.spawn_conn_io(&conn, &ctx);
            }
        }
        if let Some(listener) = relock(&self.listener).take() {
            let fabric = Arc::clone(self);
            relock(&self.io).push(
                std::thread::Builder::new()
                    .name("tcp-acceptor".into())
                    .spawn(move || acceptor_loop(fabric, listener))
                    .expect("spawn tcp acceptor"),
            );
        }
    }

    /// Spawns the writer and reader threads of one connection.
    fn spawn_conn_io(self: &Arc<Self>, conn: &Arc<Conn>, ctx: &IoCtx) {
        let mut io = relock(&self.io);
        let w = Arc::clone(conn);
        io.push(
            std::thread::Builder::new()
                .name(format!("tcp-writer-{}", conn.peer_proc))
                .spawn(move || writer_loop(w))
                .expect("spawn tcp writer"),
        );
        let fabric = Arc::clone(self);
        let conn = Arc::clone(conn);
        let ctx = ctx.clone();
        io.push(
            std::thread::Builder::new()
                .name(format!("tcp-reader-{}", conn.peer_proc))
                .spawn(move || {
                    reader_loop(fabric, conn, ctx.sched, ctx.links, ctx.stats, ctx.clock)
                })
                .expect("spawn tcp reader"),
        );
    }

    /// Installs a rejoining peer's fresh connection: retires whatever
    /// occupied the slot (running its crash accounting if the reader had
    /// not already), marks the peer's actors back up in the link table,
    /// and spawns the new connection's I/O threads. The peer's *protocol*
    /// recovery — reloading its checkpoint, replaying its input log,
    /// re-subscribing — happens in the rejoined process itself; survivors
    /// only need delivery re-enabled, after which heartbeats resume.
    fn install_conn(self: &Arc<Self>, peer: u32, stream: TcpStream, carry: Vec<u8>) {
        let ctx = match relock(&self.ioctx).clone() {
            Some(ctx) => ctx,
            None => return,
        };
        if peer == self.my_proc
            || peer as usize >= self.conns.len()
            || self.closing.load(Ordering::Acquire)
        {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let conn = Arc::new(Conn::new(peer, stream, carry));
        let old = {
            let mut slot = write(&self.conns[peer as usize]);
            slot.replace(Arc::clone(&conn))
        };
        if let Some(old) = old {
            // Usually already dead (the reader saw the torn socket when
            // the peer was killed); if the kill and the rejoin raced, the
            // crash accounting runs now, before the NodeUp below.
            self.reset_conn(&old, &ctx.links, &ctx.stats, ctx.clock.now());
            relock(&self.retired).push(old);
        }
        let now = ctx.clock.now();
        for (i, proc) in self.plan.iter().enumerate() {
            if *proc == peer {
                ctx.links.apply(&FaultEvent::NodeUp(NodeId(i as u32)), now);
            }
        }
        self.spawn_conn_io(&conn, &ctx);
    }

    /// Aggregated wire gauges across every connection, including retired
    /// ones (a rejoin replaces the `Conn` but its traffic still counts).
    pub fn wire_gauges(&self) -> WireGauges {
        let mut w = WireGauges::default();
        let live: Vec<Arc<Conn>> = self
            .conns
            .iter()
            .filter_map(|slot| read(slot).clone())
            .collect();
        let retired: Vec<Arc<Conn>> = relock(&self.retired).clone();
        for conn in live.iter().chain(retired.iter()) {
            if conn.alive.load(Ordering::Acquire) {
                w.conns += 1;
            }
            let g = &conn.g;
            w.bytes_sent += g.bytes_sent.load(Ordering::Relaxed);
            w.bytes_recv += g.bytes_recv.load(Ordering::Relaxed);
            w.frames_sent += g.frames_sent.load(Ordering::Relaxed);
            w.frames_recv += g.frames_recv.load(Ordering::Relaxed);
            w.flushes += g.flushes.load(Ordering::Relaxed);
            w.grants_sent += g.grants_sent.load(Ordering::Relaxed);
            w.grants_recv += g.grants_recv.load(Ordering::Relaxed);
            w.stall_reports += g.stall_reports.load(Ordering::Relaxed);
            w.purged_frames += g.purged.load(Ordering::Relaxed);
            w.resets += g.resets.load(Ordering::Relaxed);
        }
        w
    }

    /// Orderly teardown: stops the acceptor, sends a `Goodbye` on every
    /// live connection, flushes, shuts the write halves down, and joins
    /// the I/O threads (each reader exits on its peer's `Goodbye` + EOF,
    /// or was already gone). Idempotent.
    pub fn shutdown(&self) {
        self.closing.store(true, Ordering::Release);
        for slot in &self.conns {
            let Some(conn) = read(slot).clone() else {
                continue;
            };
            let mut ws = relock(&conn.write);
            if conn.alive.load(Ordering::Acquire) && !ws.closing {
                encode_frame(
                    &mut ws.buf,
                    NodeId(self.my_proc),
                    NodeId(conn.peer_proc),
                    &WireMsg::Goodbye,
                );
                ws.frames += 1;
                ws.closing = true;
            }
            drop(ws);
            conn.wake.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = relock(&self.io).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Test hook: tears the connection to `proc` down without a `Goodbye`
    /// — the peer observes a crash, not a clean close.
    #[cfg(test)]
    pub(crate) fn kill(&self, proc: u32) {
        if let Some(conn) = read(&self.conns[proc as usize]).clone() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

/// Dials one peer and announces ourselves with a `Hello` frame.
fn dial_peer(my_proc: u32, peer: u32, addr: &str) -> std::io::Result<Arc<Conn>> {
    let stream = dial_retry(addr)?;
    stream.set_nodelay(true)?;
    let mut hello = Vec::with_capacity(16);
    encode_frame(
        &mut hello,
        NodeId(my_proc),
        NodeId(peer),
        &WireMsg::Hello { proc: my_proc },
    );
    (&stream).write_all(&hello)?;
    Ok(Arc::new(Conn::new(peer, stream, Vec::new())))
}

/// Dials `addr`, retrying while the peer's listener comes up (~10 s
/// deadline) with bounded exponential backoff: 10 ms doubling to a 500 ms
/// cap, so a slow peer costs few connection attempts but a fast one is
/// picked up within milliseconds.
fn dial_retry(addr: &str) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    let mut backoff = std::time::Duration::from_millis(10);
    let cap = std::time::Duration::from_millis(500);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => {
                std::thread::sleep(backoff.min(deadline.saturating_duration_since(Instant::now())));
                backoff = (backoff * 2).min(cap);
            }
        }
    }
}

/// The acceptor thread: admits peers that (re)dial after startup — a
/// respawned worker process rejoining the mesh. Polls a non-blocking
/// listener so shutdown can stop it promptly.
fn acceptor_loop(fabric: Arc<TcpFabric>, listener: TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !fabric.closing.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The Hello read is blocking (with a deadline) — the
                // accepted socket must not inherit the listener's mode.
                if stream.set_nonblocking(false).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
                let Ok((peer, carry)) = read_hello(&stream) else {
                    continue;
                };
                let _ = stream.set_read_timeout(None);
                fabric.install_conn(peer, stream, carry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Reads the handshake `Hello` frame off a freshly accepted stream;
/// returns the dialer's process id and any bytes read past the frame.
fn read_hello(mut stream: &TcpStream) -> std::io::Result<(u32, Vec<u8>)> {
    let mut buf = Vec::with_capacity(64);
    let mut scratch = [0u8; 1024];
    loop {
        match decode_frame(&buf) {
            Ok(Some((_, _, WireMsg::Hello { proc }, used))) => {
                return Ok((proc, buf.split_off(used)));
            }
            Ok(Some(_)) | Err(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "handshake must start with a Hello frame",
                ));
            }
            Ok(None) => {}
        }
        let n = stream.read(&mut scratch)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed during handshake",
            ));
        }
        buf.extend_from_slice(&scratch[..n]);
    }
}

/// The reader thread: grows a decode buffer from large reads, dispatches
/// every complete frame, and translates the connection's end into either
/// a clean close or a crash.
fn reader_loop(
    fabric: Arc<TcpFabric>,
    conn: Arc<Conn>,
    sched: Arc<Scheduler>,
    links: Arc<LinkTable>,
    stats: Arc<RuntimeStats>,
    clock: MonotonicClock,
) {
    let mut buf: Vec<u8> = std::mem::take(&mut relock(&conn.carry));
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        // Drain every complete frame before reading more.
        let mut consumed = 0usize;
        loop {
            match decode_frame(&buf[consumed..]) {
                Ok(Some((from, to, msg, used))) => {
                    consumed += used;
                    conn.g.frames_recv.fetch_add(1, Ordering::Relaxed);
                    match msg {
                        WireMsg::Net(m) => {
                            // Straight into the destination mailbox: the
                            // delivery-time checks run in process_msg, the
                            // same as an in-process send.
                            sched.push(to, Envelope::Msg { from, msg: m }, None);
                        }
                        WireMsg::CreditGrant => {
                            conn.g.grants_recv.fetch_add(1, Ordering::Relaxed);
                            let now = clock.now();
                            // The grant names the data link from → to; our
                            // ledger holds its window. Release the next
                            // queued message onto the wire.
                            if let Some(m) = links.consumed_release(from, to, now) {
                                if !fabric.send_net(from, to, m) {
                                    stats.count_delivery_drop();
                                }
                            }
                            fabric.clear_stall_if_drained(&links, from, to, now);
                        }
                        WireMsg::StallReport { micros } => {
                            conn.g.stall_reports.fetch_add(1, Ordering::Relaxed);
                            fabric.note_remote_stall(from, to, micros);
                        }
                        WireMsg::Goodbye => {
                            conn.peer_goodbye.store(true, Ordering::Release);
                        }
                        // Only valid during the handshake; mid-stream it
                        // means the framing is corrupt.
                        WireMsg::Hello { .. } => {
                            fabric.reset_conn(&conn, &links, &stats, clock.now());
                            return;
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Corrupt frame: indistinguishable from a torn
                    // connection — crash semantics.
                    fabric.reset_conn(&conn, &links, &stats, clock.now());
                    return;
                }
            }
        }
        if consumed > 0 {
            buf.drain(..consumed);
        }
        match (&conn.stream).read(&mut scratch) {
            Ok(0) => {
                if conn.peer_goodbye.load(Ordering::Acquire) {
                    conn.mark_dead();
                } else {
                    fabric.reset_conn(&conn, &links, &stats, clock.now());
                }
                return;
            }
            Ok(n) => {
                conn.g.bytes_recv.fetch_add(n as u64, Ordering::Relaxed);
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                fabric.reset_conn(&conn, &links, &stats, clock.now());
                return;
            }
        }
    }
}

/// Maps every actor of `layout` to a process: sources and the client stay
/// in process 0 (the launcher, which reads the metrics), and the replicas
/// of each physical fragment spread round-robin over processes `1..procs`
/// such that **same-fragment replicas land in different processes** —
/// killing one process then behaves like the paper's independent node
/// failures. Every process computes the identical plan from the shared
/// layout, so no coordination is needed.
pub fn plan_processes(layout: &SystemLayout, procs: u32) -> Vec<u32> {
    let mut plan = vec![0u32; layout.actors.len()];
    if procs <= 1 {
        return plan;
    }
    for (fi, replicas) in layout.fragment_replicas.iter().enumerate() {
        for (r, id) in replicas.iter().enumerate() {
            plan[id.index()] = 1 + ((fi + r) as u32 % (procs - 1));
        }
    }
    plan
}

/// A deployment running under the thread engine in one process of a
/// multi-process system — the socket sibling of
/// [`RunningThreads`](crate::RunningThreads).
pub struct RunningTcp {
    /// The engine driving this process's live actors.
    pub runtime: ThreadRuntime,
    /// The socket fabric connecting this process to its peers.
    pub fabric: Arc<TcpFabric>,
    /// Metrics collected by the client proxy (populated only in the
    /// process hosting the client).
    pub metrics: MetricsHub,
    /// Source actor ids, per stream.
    pub source_ids: Vec<(StreamId, NodeId)>,
    /// Node ids per physical fragment.
    pub fragment_replicas: Vec<Vec<NodeId>>,
    /// Physical fragment indexes per logical fragment, in shard order.
    pub groups: Vec<Vec<usize>>,
    /// The client proxy, if hosted here.
    pub client: Option<NodeId>,
}

impl RunningTcp {
    /// Lets the system run for `wall`, then refreshes the metrics hub's
    /// transport, scheduler, and wire gauges.
    pub fn run_for(&self, wall: std::time::Duration) {
        self.runtime.run_for(wall);
        self.metrics.record_flow(self.runtime.links().flow_gauges());
        self.metrics.record_sched(self.runtime.sched_gauges());
        self.metrics.record_wire(self.fabric.wire_gauges());
    }

    /// Aggregated wire gauges across this process's connections.
    pub fn wire_gauges(&self) -> WireGauges {
        self.fabric.wire_gauges()
    }

    /// Message-loss statistics so far, including the wire gauges.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.runtime.stats();
        snap.wire = self.fabric.wire_gauges();
        snap
    }

    /// Stops the local engine, then tears the fabric down cleanly
    /// (`Goodbye` + flush on every connection). Returns final statistics
    /// with the wire gauges filled in.
    pub fn shutdown(self) -> StatsSnapshot {
        self.metrics.record_flow(self.runtime.links().flow_gauges());
        self.metrics.record_sched(self.runtime.sched_gauges());
        let mut snap = self.runtime.shutdown();
        self.fabric.shutdown();
        snap.wire = self.fabric.wire_gauges();
        self.metrics.record_wire(snap.wire);
        snap
    }
}

/// Launches this process's share of a resolved [`SystemLayout`] over an
/// established [`TcpFabric`]: actors planned here run for real, actors
/// planned elsewhere become inert stubs that are stopped immediately (a
/// send to one travels the wire instead). The scripted fault script
/// replays in every process, keeping link-table decisions consistent.
pub fn deploy_tcp(layout: SystemLayout, fabric: Arc<TcpFabric>) -> RunningTcp {
    assert_eq!(
        fabric.plan.len(),
        layout.actors.len(),
        "process plan must cover every actor"
    );
    let metrics = layout.metrics.clone();
    let mut remote = Vec::new();
    let actors: Vec<Box<dyn DpcActor>> = layout
        .actors
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let id = NodeId(i as u32);
            if fabric.is_remote(id) {
                remote.push(id);
                Box::new(RemoteStub) as Box<dyn DpcActor>
            } else {
                spec.into_dpc_actor(&metrics)
            }
        })
        .collect();
    let workers = layout
        .workers
        .unwrap_or_else(ThreadRuntime::default_workers);
    let runtime = ThreadRuntime::spawn_with_fabric(
        actors,
        layout.script,
        layout.seed,
        layout.partitions,
        layout.flow_policy,
        workers,
        Some(Arc::clone(&fabric)),
    );
    // Stubs process their (no-op) on_start and stop: nothing remote ever
    // runs here, and shutdown's all-stopped rendezvous already counts
    // them.
    for id in &remote {
        runtime.stop_task(*id);
    }
    RunningTcp {
        runtime,
        fabric,
        metrics,
        source_ids: layout.source_ids,
        fragment_replicas: layout.fragment_replicas,
        groups: layout.groups,
        client: layout.client,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicUsize;
    use borealis_types::{CreditPolicy, Tuple, TupleBatch, TupleId};

    fn data_msg() -> NetMsg {
        NetMsg::Data {
            stream: StreamId(0),
            tuples: TupleBatch::single(Tuple::boundary(TupleId::NONE, Time::ZERO)).into(),
        }
    }

    /// Two fabrics over loopback in one OS process. Sequential establish
    /// works because the dialer's connect completes against the
    /// listener's backlog before accept is called.
    fn fabric_pair(plan: Vec<u32>) -> (Arc<TcpFabric>, Arc<TcpFabric>) {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![
            l0.local_addr().unwrap().to_string(),
            l1.local_addr().unwrap().to_string(),
        ];
        let f1 = TcpFabric::establish(1, l1, &addrs, plan.clone()).unwrap();
        let f0 = TcpFabric::establish(0, l0, &addrs, plan).unwrap();
        (f0, f1)
    }

    /// Sends a burst of data messages to a remote consumer on start.
    struct Burst {
        to: NodeId,
        n: usize,
    }
    impl DpcActor for Burst {
        fn on_start(&mut self, ctx: &mut dyn RuntimeCtx) {
            for _ in 0..self.n {
                ctx.send(self.to, data_msg());
            }
        }
        fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, _from: NodeId, _msg: NetMsg) {}
        fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, _kind: u64) {}
    }

    /// Counts data deliveries (consumption is immediate: credit returns
    /// right away, via a wire grant when the sender is remote).
    struct Counter {
        seen: Arc<AtomicUsize>,
    }
    impl DpcActor for Counter {
        fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, _from: NodeId, _msg: NetMsg) {
            self.seen.fetch_add(1, Ordering::SeqCst);
        }
        fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, _kind: u64) {}
    }

    fn wait_until(pred: impl Fn() -> bool, ms: u64) -> bool {
        let deadline = Instant::now() + std::time::Duration::from_millis(ms);
        while Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        pred()
    }

    fn spawn_proc(
        fabric: &Arc<TcpFabric>,
        actors: Vec<Box<dyn DpcActor>>,
        policy: CreditPolicy,
    ) -> ThreadRuntime {
        let rt = ThreadRuntime::spawn_with_fabric(
            actors,
            Vec::new(),
            1,
            Vec::new(),
            policy,
            2,
            Some(Arc::clone(fabric)),
        );
        // Stop the stubs, as deploy_tcp does.
        for i in 0..fabric.plan.len() {
            let id = NodeId(i as u32);
            if fabric.is_remote(id) {
                rt.stop_task(id);
            }
        }
        rt
    }

    #[test]
    fn window_one_credits_flow_across_the_wire() {
        // Actor 0 (proc 0) bursts 4 data messages at actor 1 (proc 1)
        // under Window(1): three queue in proc 0's ledger and release one
        // by one as CreditGrant frames come back.
        let (f0, f1) = fabric_pair(vec![0, 1]);
        let seen = Arc::new(AtomicUsize::new(0));
        let rt0 = spawn_proc(
            &f0,
            vec![
                Box::new(Burst {
                    to: NodeId(1),
                    n: 4,
                }),
                Box::new(RemoteStub),
            ],
            CreditPolicy::Window(1),
        );
        let rt1 = spawn_proc(
            &f1,
            vec![
                Box::new(RemoteStub),
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            ],
            CreditPolicy::Window(1),
        );
        assert!(
            wait_until(|| seen.load(Ordering::SeqCst) == 4, 5000),
            "all four data messages must arrive; got {}",
            seen.load(Ordering::SeqCst)
        );
        // The queued sends stalled the link, so the receiver heard about
        // it; the drain retracted the report.
        assert!(
            wait_until(
                || f1.remote_stalled_for(NodeId(0), NodeId(1)) == Duration::ZERO,
                2000
            ),
            "stall retracts once the queue drains"
        );
        let w1 = f1.wire_gauges();
        assert!(
            w1.grants_sent >= 3,
            "wire grants released the queue: {w1:?}"
        );
        assert!(w1.stall_reports >= 1, "sender reported its stall: {w1:?}");
        let stats0 = rt0.shutdown();
        f0.shutdown();
        rt1.shutdown();
        f1.shutdown();
        assert_eq!(stats0.total_drops(), 0, "clean run drops nothing");
        let w0 = f0.wire_gauges();
        assert!(w0.grants_recv >= 3, "sender saw the grants: {w0:?}");
        assert!(w0.frames_per_flush() >= 1.0);
    }

    #[test]
    fn torn_connection_is_a_crash_with_counted_drops() {
        let (f0, f1) = fabric_pair(vec![0, 1]);
        let seen = Arc::new(AtomicUsize::new(0));
        let rt0 = spawn_proc(
            &f0,
            vec![
                Box::new(Burst {
                    to: NodeId(1),
                    n: 2,
                }),
                Box::new(RemoteStub),
            ],
            CreditPolicy::Window(1),
        );
        let rt1 = spawn_proc(
            &f1,
            vec![
                Box::new(RemoteStub),
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            ],
            CreditPolicy::Window(1),
        );
        assert!(wait_until(|| seen.load(Ordering::SeqCst) >= 1, 5000));
        // Tear the socket down with no Goodbye: both sides must see a
        // reset, mark the peer's actors down, and count later sends as
        // drops.
        f0.kill(1);
        assert!(
            wait_until(
                || f0.wire_gauges().resets + f1.wire_gauges().resets >= 2,
                5000
            ),
            "both sides observe the reset: {:?} / {:?}",
            f0.wire_gauges(),
            f1.wire_gauges()
        );
        assert!(!rt0.links().node_up(NodeId(1)), "peer actor marked down");
        assert!(!rt1.links().node_up(NodeId(0)), "peer actor marked down");
        rt0.shutdown();
        f0.shutdown();
        rt1.shutdown();
        f1.shutdown();
    }

    #[test]
    fn respawned_peer_rejoins_and_delivers_again() {
        // Actor 0 lives in proc 1 (the sender), actor 1 in proc 0 (the
        // counter). Proc 1 dies hard (torn socket), then a fresh fabric
        // rejoins through proc 0's acceptor thread — the slot is
        // reinstalled, the actor marked back up, and deliveries resume.
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![
            l0.local_addr().unwrap().to_string(),
            l1.local_addr().unwrap().to_string(),
        ];
        let plan = vec![1u32, 0u32];
        let f1 = TcpFabric::establish(1, l1, &addrs, plan.clone()).unwrap();
        let f0 = TcpFabric::establish(0, l0, &addrs, plan.clone()).unwrap();
        let seen = Arc::new(AtomicUsize::new(0));
        let rt0 = spawn_proc(
            &f0,
            vec![
                Box::new(RemoteStub),
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            ],
            CreditPolicy::Window(1),
        );
        let rt1 = spawn_proc(
            &f1,
            vec![
                Box::new(Burst {
                    to: NodeId(1),
                    n: 2,
                }),
                Box::new(RemoteStub),
            ],
            CreditPolicy::Window(1),
        );
        assert!(wait_until(|| seen.load(Ordering::SeqCst) == 2, 5000));
        // Kill proc 1 the hard way: no Goodbye, proc 0 sees a crash.
        f1.kill(0);
        assert!(
            wait_until(|| !rt0.links().node_up(NodeId(0)), 5000),
            "torn socket marks the peer's actor down"
        );
        rt1.shutdown();
        f1.shutdown();
        // Respawn proc 1 (new listener — a real respawn rebinds its
        // configured address; a fresh port keeps the test race-free).
        let l1b = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs2 = vec![addrs[0].clone(), l1b.local_addr().unwrap().to_string()];
        let f1b = TcpFabric::establish_rejoin(1, l1b, &addrs2, plan).unwrap();
        let rt1b = spawn_proc(
            &f1b,
            vec![
                Box::new(Burst {
                    to: NodeId(1),
                    n: 3,
                }),
                Box::new(RemoteStub),
            ],
            CreditPolicy::Window(1),
        );
        assert!(
            wait_until(|| rt0.links().node_up(NodeId(0)), 5000),
            "rejoin marks the peer's actors back up"
        );
        assert!(
            wait_until(|| seen.load(Ordering::SeqCst) == 5, 5000),
            "deliveries resume after the rejoin: {}",
            seen.load(Ordering::SeqCst)
        );
        let w0 = f0.wire_gauges();
        assert!(w0.resets >= 1, "the kill counted as a reset: {w0:?}");
        rt1b.shutdown();
        f1b.shutdown();
        rt0.shutdown();
        f0.shutdown();
    }

    #[test]
    fn plan_spreads_replicas_across_processes() {
        // Hand-build the minimal layout shape the planner reads.
        use borealis_diagram::{plan_deployment, DeploymentSpec, DpcConfig, QueryBuilder};
        use borealis_dpc::SystemBuilder;
        let mut q = QueryBuilder::new();
        let s1 = q.source("s1");
        let s2 = q.source("s2");
        let u = q.union("u", &[s1, s2]);
        q.output(u);
        let d = q.build().unwrap();
        let p = plan_deployment(&d, &DeploymentSpec::single(2), &DpcConfig::default()).unwrap();
        let layout = SystemBuilder::new(1, Duration::from_millis(1))
            .source(borealis_dpc::SourceConfig::seq(s1.id(), 10.0))
            .source(borealis_dpc::SourceConfig::seq(s2.id(), 10.0))
            .plan(p)
            .client_streams(vec![u.id()])
            .layout();
        let plan = plan_processes(&layout, 3);
        assert_eq!(plan.len(), layout.actors.len());
        // Sources and client stay in process 0.
        for (_, id) in &layout.source_ids {
            assert_eq!(plan[id.index()], 0);
        }
        assert_eq!(plan[layout.client.unwrap().index()], 0);
        // Same-fragment replicas land in different processes.
        for replicas in &layout.fragment_replicas {
            let procs: HashSet<u32> = replicas.iter().map(|id| plan[id.index()]).collect();
            assert_eq!(procs.len(), replicas.len().min(2));
            assert!(!procs.contains(&0), "replicas avoid the client process");
        }
        let single = plan_processes(&layout, 1);
        assert!(single.iter().all(|p| *p == 0));
    }
}
