//! The work-stealing scheduling fabric of the pooled thread engine.
//!
//! Every actor is a [`Task`]: a mailbox plus its protocol state, runnable
//! by any worker. The scheduler's contract is the *queued-exactly-once*
//! state machine — a mailbox push transitions an Idle task to Queued and
//! enqueues it on exactly one run queue; pushes to a Queued or Running
//! task only append to the mailbox. A worker that drains a task's mailbox
//! transitions it back to Idle under the mailbox lock, so no envelope can
//! arrive between "queue observed empty" and "state set Idle" without
//! re-queueing the task.
//!
//! Run queues come in two kinds:
//!
//! * one **local queue per worker** — pushes made *by* a worker land on
//!   its own queue (locality); idle siblings steal from the back;
//! * a **global injector** — pushes from non-worker threads (the fault
//!   controller, shutdown) land here and any worker picks them up.
//!
//! Idle workers park on a token condvar ([`IdleLot`]): every push that
//! makes a task runnable deposits a wake token (capped at the worker
//! count), so a worker observing empty queues either consumes a pending
//! token and rescans or sleeps until the next deposit — wakeups are never
//! lost and idle workers burn no CPU. A worker with pending timer-wheel
//! deadlines bounds its park by the earliest one.
//!
//! FIFO guarantees: one mailbox is one `VecDeque` behind one mutex, and a
//! task is Running on at most one worker at a time, so per-sender delivery
//! order is preserved no matter which workers run the task or how runs
//! interleave with steals.

use crate::sync::{
    cv_wait, cv_wait_timeout, relock, Arc, AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex,
    Ordering,
};
use borealis_dpc::{DpcActor, NetMsg};
use borealis_sim::FaultEvent;
use borealis_types::{NodeId, SchedGauges};
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// One delivery into a task's mailbox.
pub(crate) enum Envelope {
    /// A protocol message from another actor.
    Msg {
        /// Sending actor.
        from: NodeId,
        /// The message.
        msg: NetMsg,
    },
    /// A fault notification from the controller.
    Fault(FaultEvent),
    /// A timer that came due on a worker wheel (re-enqueued so it runs
    /// with the task's other work, in mailbox order).
    Timer(u64),
    /// Orderly shutdown: process everything queued before this, then stop.
    Stop,
}

/// Scheduling state of a task — the queued-exactly-once machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RunState {
    /// Mailbox empty, not on any run queue.
    Idle,
    /// On exactly one run queue (or in a worker's hand, pre-`begin`).
    Queued,
    /// A worker is draining the mailbox.
    Running,
}

struct MailboxInner {
    queue: VecDeque<Envelope>,
    state: RunState,
    /// Stop processed (or the actor panicked): further pushes are dropped
    /// silently, like a connection reset during teardown.
    stopped: bool,
}

/// The mutable protocol half of a task, locked by the running worker.
/// The run-state machine makes the lock uncontended: a task is Running on
/// at most one worker, and nothing else touches the actor.
pub(crate) struct ActorCell {
    pub(crate) actor: Box<dyn DpcActor>,
    pub(crate) rng: StdRng,
    pub(crate) started: bool,
}

/// One schedulable actor.
pub(crate) struct Task {
    pub(crate) id: NodeId,
    mailbox: Mutex<MailboxInner>,
    pub(crate) cell: Mutex<ActorCell>,
}

impl Task {
    fn new(id: NodeId, actor: Box<dyn DpcActor>, rng: StdRng) -> Task {
        Task {
            id,
            mailbox: Mutex::new(MailboxInner {
                queue: VecDeque::new(),
                state: RunState::Idle,
                stopped: false,
            }),
            cell: Mutex::new(ActorCell {
                actor,
                rng,
                started: false,
            }),
        }
    }

    /// The dequeuing worker takes ownership: Queued → Running.
    pub(crate) fn begin(&self) {
        let mut mb = relock(&self.mailbox);
        debug_assert_eq!(mb.state, RunState::Queued);
        mb.state = RunState::Running;
    }

    /// Pops the next envelope while Running; `None` transitions the task
    /// back to Idle (mailbox drained) under the same lock, closing the
    /// push race.
    pub(crate) fn pop_envelope(&self) -> Option<Envelope> {
        let mut mb = relock(&self.mailbox);
        debug_assert!(
            mb.state == RunState::Running || mb.stopped,
            "pop_envelope on a task that is not Running: {:?}",
            mb.state
        );
        match mb.queue.pop_front() {
            Some(env) => Some(env),
            None => {
                mb.state = RunState::Idle;
                None
            }
        }
    }

    /// Ends an activation that hit its batch budget: Running → Queued if
    /// work remains (caller re-enqueues; returns `true`), else → Idle.
    pub(crate) fn yield_back(&self) -> bool {
        let mut mb = relock(&self.mailbox);
        debug_assert!(
            mb.state == RunState::Running || mb.stopped,
            "yield_back on a task that is not Running: {:?}",
            mb.state
        );
        if mb.queue.is_empty() {
            mb.state = RunState::Idle;
            false
        } else {
            mb.state = RunState::Queued;
            true
        }
    }

    /// Marks the task stopped (Stop processed, or the actor panicked):
    /// drops everything still queued and refuses future pushes. Returns
    /// `false` if it was already stopped.
    pub(crate) fn mark_stopped(&self) -> bool {
        let mut mb = relock(&self.mailbox);
        if mb.stopped {
            return false;
        }
        mb.stopped = true;
        mb.queue.clear();
        mb.state = RunState::Idle;
        true
    }
}

/// The token-based parking lot: `unpark_one` deposits a wake token
/// (capped at the worker count) and signals; a parking worker first
/// consumes a pending token (then rescans the queues) and only sleeps
/// when none is banked. The token closes the scan-then-sleep race — a
/// push landing between a worker's empty scan and its sleep leaves a
/// token the sleep consumes immediately.
pub(crate) struct IdleLot {
    tokens: Mutex<usize>,
    cv: Condvar,
    cap: usize,
}

impl IdleLot {
    pub(crate) fn new(cap: usize) -> IdleLot {
        IdleLot {
            tokens: Mutex::new(0),
            cv: Condvar::new(),
            cap,
        }
    }

    pub(crate) fn unpark_one(&self) {
        let mut t = relock(&self.tokens);
        if *t < self.cap {
            *t += 1;
        }
        debug_assert!(*t <= self.cap, "token bank never exceeds the cap");
        drop(t);
        self.cv.notify_one();
    }

    fn unpark_all(&self) {
        let mut t = relock(&self.tokens);
        *t = self.cap;
        drop(t);
        self.cv.notify_all();
    }

    /// Tokens currently banked (model-test observability).
    #[cfg(all(test, borealis_model))]
    pub(crate) fn banked(&self) -> usize {
        *relock(&self.tokens)
    }

    /// Parks until a token is available or `timeout` elapses (indefinitely
    /// with `None`). Consumes at most one token.
    pub(crate) fn park(&self, timeout: Option<std::time::Duration>) {
        let mut t = relock(&self.tokens);
        if *t > 0 {
            *t -= 1;
            return;
        }
        match timeout {
            Some(d) => {
                let (mut t, _) = cv_wait_timeout(&self.cv, t, d);
                if *t > 0 {
                    *t -= 1;
                }
            }
            None => loop {
                t = cv_wait(&self.cv, t);
                if *t > 0 {
                    *t -= 1;
                    return;
                }
            },
        }
    }
}

/// Cumulative scheduler counters (atomics; relaxed — totals are exact
/// only after shutdown, like [`RuntimeStats`](crate::links::RuntimeStats)).
#[derive(Default)]
struct SchedCounters {
    local_polls: AtomicU64,
    global_polls: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    local_peak: AtomicU64,
    global_peak: AtomicU64,
    run_hist: [AtomicU64; 5],
}

/// The shared scheduling fabric: every task, every run queue, the parking
/// lot, and the shutdown rendezvous.
pub(crate) struct Scheduler {
    pub(crate) tasks: Vec<Arc<Task>>,
    locals: Vec<Mutex<VecDeque<Arc<Task>>>>,
    injector: Mutex<VecDeque<Arc<Task>>>,
    /// Exact depth of each local queue, updated under that queue's lock —
    /// so the gauge provably equals `q.len()` at every push/pop/steal
    /// boundary (debug-asserted there).
    local_depths: Vec<AtomicU64>,
    /// Exact depth of the injector, updated under its lock.
    global_depth: AtomicU64,
    idle: IdleLot,
    counters: SchedCounters,
    /// Set once every task has stopped: workers exit their loops.
    exiting: AtomicBool,
    stopped: AtomicUsize,
    exit_mx: Mutex<()>,
    exit_cv: Condvar,
    /// Worker names that panicked while running an actor.
    crashed: Mutex<Vec<String>>,
}

impl Scheduler {
    /// Builds the fabric and seeds every task onto the run queues
    /// round-robin (state Queued), so each actor's `on_start` runs as soon
    /// as a worker picks it up.
    pub(crate) fn new(actors: Vec<(Box<dyn DpcActor>, StdRng)>, workers: usize) -> Scheduler {
        let tasks: Vec<Arc<Task>> = actors
            .into_iter()
            .enumerate()
            .map(|(i, (actor, rng))| Arc::new(Task::new(NodeId(i as u32), actor, rng)))
            .collect();
        let mut locals: Vec<VecDeque<Arc<Task>>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, task) in tasks.iter().enumerate() {
            relock(&task.mailbox).state = RunState::Queued;
            locals[i % workers].push_back(Arc::clone(task));
        }
        let local_depths = locals
            .iter()
            .map(|q| AtomicU64::new(q.len() as u64))
            .collect();
        Scheduler {
            tasks,
            locals: locals.into_iter().map(Mutex::new).collect(),
            injector: Mutex::new(VecDeque::new()),
            local_depths,
            global_depth: AtomicU64::new(0),
            idle: IdleLot::new(workers),
            counters: SchedCounters::default(),
            exiting: AtomicBool::new(false),
            stopped: AtomicUsize::new(0),
            exit_mx: Mutex::new(()),
            exit_cv: Condvar::new(),
            crashed: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn workers(&self) -> usize {
        self.locals.len()
    }

    #[cfg(test)]
    pub(crate) fn task(&self, id: NodeId) -> Option<&Arc<Task>> {
        self.tasks.get(id.index())
    }

    /// Delivers `env` into `to`'s mailbox, transitioning an Idle task to
    /// Queued exactly once. `from_worker` is the pushing worker's index
    /// (its local queue takes the task); non-worker threads pass `None`
    /// (the global injector takes it). Pushes to a stopped task are
    /// dropped silently.
    pub(crate) fn push(&self, to: NodeId, env: Envelope, from_worker: Option<usize>) {
        let Some(task) = self.tasks.get(to.index()) else {
            return;
        };
        let newly_queued = {
            let mut mb = relock(&task.mailbox);
            if mb.stopped {
                return;
            }
            mb.queue.push_back(env);
            if mb.state == RunState::Idle {
                mb.state = RunState::Queued;
                true
            } else {
                false
            }
        };
        if newly_queued {
            self.enqueue(Arc::clone(task), from_worker);
            self.idle.unpark_one();
        }
    }

    /// Puts an already-Queued task on a run queue (initial seeding is done
    /// by [`Scheduler::new`]; batch-budget yields come through here too).
    pub(crate) fn enqueue(&self, task: Arc<Task>, from_worker: Option<usize>) {
        match from_worker {
            Some(w) => {
                let mut q = relock(&self.locals[w]);
                q.push_back(task);
                let depth = q.len() as u64;
                let gauge = self.local_depths[w].fetch_add(1, Ordering::Relaxed) + 1;
                debug_assert_eq!(
                    gauge, depth,
                    "local depth gauge drifted on push (worker {w})"
                );
                drop(q);
                self.counters.local_peak.fetch_max(depth, Ordering::Relaxed);
            }
            None => {
                let mut q = relock(&self.injector);
                q.push_back(task);
                let depth = q.len() as u64;
                let gauge = self.global_depth.fetch_add(1, Ordering::Relaxed) + 1;
                debug_assert_eq!(gauge, depth, "global depth gauge drifted on push");
                drop(q);
                self.counters
                    .global_peak
                    .fetch_max(depth, Ordering::Relaxed);
            }
        }
    }

    /// Finds the next runnable task for worker `w`: own queue front, then
    /// the global injector, then steal from a sibling's back.
    pub(crate) fn pop(&self, w: usize) -> Option<Arc<Task>> {
        {
            let mut q = relock(&self.locals[w]);
            if let Some(t) = q.pop_front() {
                let gauge = self.local_depths[w].fetch_sub(1, Ordering::Relaxed) - 1;
                debug_assert_eq!(gauge, q.len() as u64, "local depth gauge drifted on pop");
                drop(q);
                self.counters.local_polls.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        {
            let mut q = relock(&self.injector);
            if let Some(t) = q.pop_front() {
                let gauge = self.global_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                debug_assert_eq!(gauge, q.len() as u64, "global depth gauge drifted on pop");
                drop(q);
                self.counters.global_polls.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        let n = self.locals.len();
        for off in 1..n {
            let victim = (w + off) % n;
            let mut q = relock(&self.locals[victim]);
            if let Some(t) = q.pop_back() {
                let gauge = self.local_depths[victim].fetch_sub(1, Ordering::Relaxed) - 1;
                debug_assert_eq!(gauge, q.len() as u64, "local depth gauge drifted on steal");
                drop(q);
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Parks worker `w` until a wake token arrives or `timeout` elapses.
    pub(crate) fn park(&self, timeout: Option<std::time::Duration>) {
        self.counters.parks.fetch_add(1, Ordering::Relaxed);
        self.idle.park(timeout);
    }

    /// Records one actor activation's run time in the histogram.
    pub(crate) fn record_run(&self, elapsed: std::time::Duration) {
        let bucket = SchedGauges::bucket_for(elapsed.as_micros() as u64);
        self.counters.run_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// One task stopped for good (Stop processed or actor panicked). The
    /// last one releases [`Scheduler::wait_all_stopped`].
    pub(crate) fn note_stopped(&self) {
        let stopped = self.stopped.fetch_add(1, Ordering::AcqRel) + 1;
        if stopped >= self.tasks.len() {
            let _g = relock(&self.exit_mx);
            self.exit_cv.notify_all();
        }
    }

    /// Records a worker panic while running an actor.
    pub(crate) fn note_crashed(&self, task_name: String) {
        relock(&self.crashed).push(task_name);
    }

    /// Names of actors that panicked so far.
    pub(crate) fn crashed(&self) -> Vec<String> {
        relock(&self.crashed).clone()
    }

    /// Blocks until every task has processed its Stop (or died).
    pub(crate) fn wait_all_stopped(&self) {
        let mut g = relock(&self.exit_mx);
        while self.stopped.load(Ordering::Acquire) < self.tasks.len() {
            g = cv_wait(&self.exit_cv, g);
        }
    }

    /// Debug-only full check that the depth gauges equal the actual queue
    /// lengths. Only valid at quiescent points (no concurrent pushers) —
    /// the engine calls it after the workers have been joined.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_verify_depths(&self) {
        for (w, q) in self.locals.iter().enumerate() {
            assert_eq!(
                self.local_depths[w].load(Ordering::Relaxed),
                relock(q).len() as u64,
                "local depth gauge drifted (worker {w})"
            );
        }
        assert_eq!(
            self.global_depth.load(Ordering::Relaxed),
            relock(&self.injector).len() as u64,
            "global depth gauge drifted"
        );
    }

    /// Tells every worker to exit and wakes them all.
    pub(crate) fn begin_exit(&self) {
        self.exiting.store(true, Ordering::Release);
        self.idle.unpark_all();
    }

    pub(crate) fn exiting(&self) -> bool {
        self.exiting.load(Ordering::Acquire)
    }

    /// Point-in-time scheduler gauges (depths read under the queue locks;
    /// a cold path).
    pub(crate) fn gauges(&self) -> SchedGauges {
        let c = &self.counters;
        SchedGauges {
            workers: self.locals.len() as u64,
            local_polls: c.local_polls.load(Ordering::Relaxed),
            global_polls: c.global_polls.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            local_depth: self
                .local_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum(),
            local_peak: c.local_peak.load(Ordering::Relaxed),
            global_depth: self.global_depth.load(Ordering::Relaxed),
            global_peak: c.global_peak.load(Ordering::Relaxed),
            run_hist: [
                c.run_hist[0].load(Ordering::Relaxed),
                c.run_hist[1].load(Ordering::Relaxed),
                c.run_hist[2].load(Ordering::Relaxed),
                c.run_hist[3].load(Ordering::Relaxed),
                c.run_hist[4].load(Ordering::Relaxed),
            ],
        }
    }
}

#[cfg(all(test, not(borealis_model)))]
mod tests {
    use super::*;
    use borealis_dpc::RuntimeCtx;
    use rand::SeedableRng;

    struct Inert;
    impl DpcActor for Inert {
        fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, _from: NodeId, _msg: NetMsg) {}
        fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, _kind: u64) {}
    }

    fn sched(n_actors: usize, workers: usize) -> Scheduler {
        let actors = (0..n_actors)
            .map(|i| {
                (
                    Box::new(Inert) as Box<dyn DpcActor>,
                    StdRng::seed_from_u64(i as u64),
                )
            })
            .collect();
        Scheduler::new(actors, workers)
    }

    /// Drains the initial seeding so every task is Idle.
    fn drain_initial(s: &Scheduler) {
        for w in 0..s.workers() {
            while let Some(t) = s.pop(w) {
                t.begin();
                while t.pop_envelope().is_some() {}
            }
        }
    }

    #[test]
    fn push_queues_idle_task_exactly_once() {
        let s = sched(2, 2);
        drain_initial(&s);
        s.push(NodeId(0), Envelope::Timer(1), None);
        s.push(NodeId(0), Envelope::Timer(2), None);
        // Two pushes, one enqueue: the second saw Queued.
        let t = s.pop(0).expect("task queued");
        assert!(s.pop(0).is_none(), "queued exactly once");
        t.begin();
        assert!(matches!(t.pop_envelope(), Some(Envelope::Timer(1))));
        // Pushes while Running only append.
        s.push(NodeId(0), Envelope::Timer(3), None);
        assert!(s.pop(0).is_none(), "running task is not re-queued");
        assert!(matches!(t.pop_envelope(), Some(Envelope::Timer(2))));
        assert!(matches!(t.pop_envelope(), Some(Envelope::Timer(3))));
        assert!(t.pop_envelope().is_none(), "drained back to Idle");
        // Idle again: next push re-queues.
        s.push(NodeId(0), Envelope::Timer(4), None);
        assert!(s.pop(1).is_some(), "any worker can pick it up");
    }

    #[test]
    fn steal_takes_from_sibling_back() {
        let s = sched(4, 2);
        // Initial seeding round-robins 0,2 → worker 0 and 1,3 → worker 1.
        let t = s.pop(0).unwrap();
        assert_eq!(t.id, NodeId(0));
        assert_eq!(s.pop(1).unwrap().id, NodeId(1), "own queue first");
        assert_eq!(s.pop(1).unwrap().id, NodeId(3));
        // Worker 1's queue and the injector are empty: steal from 0's back.
        let stolen = s.pop(1).unwrap();
        assert_eq!(stolen.id, NodeId(2), "stolen from worker 0's queue");
        assert!(s.gauges().steals >= 1);
    }

    #[test]
    fn stopped_tasks_drop_pushes_silently() {
        let s = sched(1, 1);
        drain_initial(&s);
        let t = Arc::clone(s.task(NodeId(0)).unwrap());
        assert!(t.mark_stopped());
        assert!(!t.mark_stopped(), "idempotent");
        s.push(NodeId(0), Envelope::Timer(1), None);
        assert!(s.pop(0).is_none(), "push to stopped task dropped");
    }

    #[test]
    fn yield_back_requeues_only_with_work_left() {
        let s = sched(1, 1);
        drain_initial(&s);
        s.push(NodeId(0), Envelope::Timer(1), Some(0));
        let t = s.pop(0).unwrap();
        t.begin();
        // Arrives while Running: appends, no second enqueue.
        s.push(NodeId(0), Envelope::Timer(2), Some(0));
        assert!(s.pop(0).is_none(), "running task is not re-queued");
        assert!(matches!(t.pop_envelope(), Some(Envelope::Timer(1))));
        // Budget hit with work left: yield re-queues.
        assert!(t.yield_back(), "work left: requeue");
        s.enqueue(Arc::clone(&t), Some(0));
        let t2 = s.pop(0).unwrap();
        assert_eq!(t2.id, t.id);
        t2.begin();
        assert!(matches!(t2.pop_envelope(), Some(Envelope::Timer(2))));
        assert!(!t2.yield_back(), "drained: idle");
    }

    #[test]
    fn tokens_cover_the_scan_then_sleep_race() {
        let lot = IdleLot::new(2);
        // A push deposited a token before the worker parked: the park
        // consumes it and returns immediately (no deadline needed).
        lot.unpark_one();
        lot.park(None);
        // Tokens cap at the worker count.
        lot.unpark_one();
        lot.unpark_one();
        lot.unpark_one();
        lot.park(Some(std::time::Duration::ZERO));
        lot.park(Some(std::time::Duration::ZERO));
        // Third park finds no token and times out.
        let start = std::time::Instant::now();
        lot.park(Some(std::time::Duration::from_millis(10)));
        assert!(start.elapsed() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn stop_rendezvous_releases_waiter() {
        let s = Arc::new(sched(2, 1));
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.wait_all_stopped());
        for id in [NodeId(0), NodeId(1)] {
            s.task(id).unwrap().mark_stopped();
            s.note_stopped();
        }
        waiter.join().unwrap();
        assert!(!s.exiting());
        s.begin_exit();
        assert!(s.exiting());
    }
}
