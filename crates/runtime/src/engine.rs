//! The thread engine: every actor is a schedulable task multiplexed onto a
//! **fixed pool of worker threads** (per-worker run queues with work
//! stealing plus a global injector — see [`crate::scheduler`]), a
//! per-worker timer wheel against the monotonic clock, and a
//! fault-controller thread replaying scripted failures against the shared
//! link table.
//!
//! Event semantics mirror the simulator's kernel so the same protocol code
//! behaves identically under both runtimes:
//!
//! * sends check reachability at **send time** (counted drops) and again
//!   at **delivery time** (in-flight losses on a link that broke);
//! * timers due while an actor is crashed are consumed and suppressed —
//!   checked both when the wheel entry fires and again when the
//!   re-enqueued timer envelope is processed, so a crash landing between
//!   the two instants still suppresses the callback (a crashed actor's
//!   queued run delivers nothing: its messages become delivery drops, its
//!   timers suppressions);
//! * fault notifications reach an actor unless it is down (except its own
//!   `NodeDown`, which it observes so crash semantics stay scripted).
//!
//! Messages carry [`NetMsg`] values whose `Data` payloads are `Arc`-backed
//! [`TupleBatch`](borealis_types::TupleBatch) views: moving a batch across
//! a mailbox transfers a reference count, never copies tuples, so the
//! wall-clock data plane inherits the zero-copy fan-out of the simulator
//! path.
//!
//! Idle workers park on a condvar bounded by their wheel's earliest
//! deadline — no polling backstop, no sleep loops: a fully idle pool
//! burns zero CPU until a push or a deadline wakes it.

use crate::clock::MonotonicClock;
use crate::links::{LinkTable, RuntimeStats, StatsSnapshot};
use crate::scheduler::{ActorCell, Envelope, Scheduler, Task};
use crate::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use crate::sync::relock;
use crate::sync::Arc;
use crate::tcp::TcpFabric;
use crate::wheel::{Due, TimerWheel};
use borealis_dpc::{DpcActor, NetMsg, RuntimeCtx};
use borealis_sim::{FaultEvent, ShardMsg};
use borealis_types::{
    CreditPolicy, Duration, NodeId, PartitionSpec, SchedGauges, SendOutcome, ShardRouter, Time,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread::JoinHandle;

/// Envelopes one activation may process before yielding the worker (the
/// task re-queues behind its siblings if work remains) — bounds how long
/// one busy actor can starve the others sharing its worker.
const ACTIVATION_BATCH: usize = 32;

/// The single send-time delivery rule, shared by immediate sends and
/// delayed departures: reachability gates the handoff (counted drop
/// otherwise), the credit ledger gates data messages (queued at the sender
/// when the window is exhausted), and a send to a stopped mailbox
/// (shutdown in progress) is dropped silently, like a connection reset
/// during teardown.
///
/// With a socket `fabric`, a remote destination changes only the last
/// hop: admission still debits the **local** ledger (it is the wire
/// credit window — see [`crate::tcp`]), a queued outcome additionally
/// reports the stall to the remote receiver, and the admitted message is
/// encoded onto the connection instead of pushed into a mailbox.
#[allow(clippy::too_many_arguments)]
fn deliver(
    sched: &Scheduler,
    from_worker: Option<usize>,
    links: &LinkTable,
    router: &mut ShardRouter,
    stats: &RuntimeStats,
    fabric: Option<&TcpFabric>,
    from: NodeId,
    to: NodeId,
    msg: NetMsg,
    now: Time,
) -> SendOutcome {
    if links.reachable(from, to) {
        // Partitioned send path: a key-sharded receiver gets only its shard
        // of the message (routing, not loss). The worker-local router memo
        // makes the whole K·R fan-out of one batch a single key-hash pass:
        // all of a sender's receiver links are routed on this worker.
        let msg = match links.partition_of(to) {
            Some(spec) => match msg.partition(spec.as_ref(), router) {
                Some(m) => m,
                None => return SendOutcome::Delivered,
            },
            None => msg,
        };
        // Credit admission: a data message past the link window queues in
        // the shared ledger; the receiver's consumption releases it later.
        let msg = if links.tracks(&msg) {
            match links.admit(from, to, msg, now) {
                Some(m) => m,
                None => {
                    if let Some(f) = fabric {
                        if f.is_remote(to) {
                            f.note_queued(from, to, links.stalled_for(from, to, now));
                        }
                    }
                    return SendOutcome::Queued;
                }
            }
        } else {
            msg
        };
        match fabric {
            Some(f) if f.is_remote(to) => {
                if f.send_net(from, to, msg) {
                    SendOutcome::Delivered
                } else {
                    // The connection died between the reachability check
                    // and the enqueue: the frame is lost in flight.
                    stats.count_send_drop();
                    SendOutcome::DroppedFault
                }
            }
            _ => {
                sched.push(to, Envelope::Msg { from, msg }, from_worker);
                SendOutcome::Delivered
            }
        }
    } else {
        stats.count_send_drop();
        SendOutcome::DroppedFault
    }
}

/// The [`RuntimeCtx`] handed to protocol handlers on a worker thread.
struct ThreadCtx<'a> {
    id: NodeId,
    now: Time,
    sched: &'a Scheduler,
    worker: usize,
    links: &'a LinkTable,
    /// The worker's one-pass partition memo (every send from this worker
    /// routes through it).
    router: &'a mut ShardRouter,
    stats: &'a RuntimeStats,
    fabric: Option<&'a TcpFabric>,
    /// The *worker's* wheel: deferred work is owner-tagged with `id`.
    wheel: &'a mut TimerWheel,
    rng: &'a mut StdRng,
    /// The handler's consumption mark for the delivery being processed
    /// (credit returns then; see [`RuntimeCtx::data_consumed_at`]).
    consumed_at: Option<Time>,
}

impl RuntimeCtx for ThreadCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }

    fn id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, to: NodeId, msg: NetMsg) -> SendOutcome {
        deliver(
            self.sched,
            Some(self.worker),
            self.links,
            self.router,
            self.stats,
            self.fabric,
            self.id,
            to,
            msg,
            self.now,
        )
    }

    fn send_after(&mut self, to: NodeId, msg: NetMsg, depart: Time) -> SendOutcome {
        // Send-time reachability is checked NOW, as the simulator does for
        // its deferred sends; an unreachable destination at call time is a
        // counted send drop. Faults striking between here and the departure
        // are in-flight losses, caught by the departure/delivery checks.
        // Credit admission happens at the departure instant.
        if !self.links.reachable(self.id, to) {
            self.stats.count_send_drop();
            SendOutcome::DroppedFault
        } else if depart <= self.now {
            self.send(to, msg)
        } else {
            self.wheel.push_send(depart, self.id, to, msg);
            SendOutcome::Deferred
        }
    }

    fn data_consumed_at(&mut self, at: Time) {
        self.consumed_at = Some(at.max(self.now));
    }

    fn inbound_stall(&self, from: NodeId) -> Duration {
        // A remote sender's ledger lives in its own process: use the
        // stall it reported over the wire instead of the local ledger.
        if let Some(f) = self.fabric {
            if f.is_remote(from) {
                return f.remote_stalled_for(from, self.id);
            }
        }
        self.links.stalled_for(from, self.id, self.now)
    }

    fn set_timer(&mut self, at: Time, kind: u64) {
        self.wheel.push_timer(at.max(self.now), self.id, kind);
    }

    fn reachable(&self, to: NodeId) -> bool {
        self.links.reachable(self.id, to)
    }

    fn rand_range(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }
}

/// How one activation ended.
enum Activation {
    /// Mailbox drained (task went Idle under the mailbox lock).
    Drained,
    /// Batch budget hit with work possibly remaining.
    Budget,
    /// The task processed its Stop.
    Stopped,
}

/// One pool worker: a run-queue consumer with its own timer wheel.
struct Worker {
    idx: usize,
    sched: Arc<Scheduler>,
    links: Arc<LinkTable>,
    stats: Arc<RuntimeStats>,
    fabric: Option<Arc<TcpFabric>>,
    clock: MonotonicClock,
    wheel: TimerWheel,
    /// Worker-local one-pass partition memo: a sender's whole fan-out runs
    /// on its worker, so per-worker state needs no cross-thread sharing.
    router: ShardRouter,
}

impl Worker {
    /// The worker main loop: fire due wheel entries, run one task
    /// activation, repeat; park (bounded by the wheel's earliest deadline)
    /// when no task is runnable.
    fn run(mut self) {
        loop {
            self.fire_due();
            if let Some(task) = self.sched.pop(self.idx) {
                self.run_task(&task);
                continue;
            }
            if self.sched.exiting() {
                break;
            }
            let timeout = self.wheel.next_due().map(|at| self.clock.until(at));
            self.sched.park(timeout);
        }
    }

    /// Fires every wheel entry due now, on behalf of its owning actor.
    fn fire_due(&mut self) {
        while let Some((_, due)) = self.wheel.pop_due(self.clock.now()) {
            match due {
                Due::Timer { owner, kind } => {
                    // Crashed actors fire no timers (the entry is consumed,
                    // as in the simulator); live ones get the timer
                    // re-enqueued behind their pending mailbox work.
                    if self.links.node_up(owner) {
                        self.sched
                            .push(owner, Envelope::Timer(kind), Some(self.idx));
                    } else {
                        self.stats.count_timer_suppressed();
                    }
                }
                Due::Send { owner, to, msg } => {
                    // The send-time check already passed when this entry was
                    // scheduled; a link that broke since loses the message
                    // in flight (delivery drop, as in the simulator).
                    if self.links.reachable(owner, to) {
                        deliver(
                            &self.sched,
                            Some(self.idx),
                            &self.links,
                            &mut self.router,
                            &self.stats,
                            self.fabric.as_deref(),
                            owner,
                            to,
                            msg,
                            self.clock.now(),
                        );
                    } else {
                        self.stats.count_delivery_drop();
                    }
                }
                Due::Replenish { owner, from } => {
                    // The owner's modeled CPU finished a delivery: its
                    // credit returns now.
                    self.replenish(owner, from);
                }
            }
        }
    }

    /// Returns the credit of one consumed delivery from `from` and hands
    /// the released queued message (if any) to `owner`'s own mailbox — the
    /// same delivery path as a fresh send, so the delivery-time checks
    /// still apply. A *remote* sender's ledger lives in its process: the
    /// credit travels back as a `CreditGrant` frame instead.
    fn replenish(&mut self, owner: NodeId, from: NodeId) {
        if let Some(f) = &self.fabric {
            if f.is_remote(from) {
                f.send_grant(from, owner);
                return;
            }
        }
        if let Some(msg) = self.links.consumed_release(from, owner, self.clock.now()) {
            self.sched
                .push(owner, Envelope::Msg { from, msg }, Some(self.idx));
        }
    }

    /// Runs one activation of `task`, containing actor panics: a panicking
    /// actor is marked stopped (its mailbox drops everything) and reported
    /// at shutdown, without taking the worker — or the pool — down.
    fn run_task(&mut self, task: &Arc<Task>) {
        task.begin();
        let started = std::time::Instant::now();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.activate(task)));
        self.sched.record_run(started.elapsed());
        match outcome {
            Ok(Activation::Drained) | Ok(Activation::Stopped) => {}
            Ok(Activation::Budget) => {
                if task.yield_back() {
                    self.sched.enqueue(Arc::clone(task), Some(self.idx));
                }
            }
            Err(_) => {
                if task.mark_stopped() {
                    self.sched
                        .note_crashed(format!("dpc-actor-{}", task.id.index()));
                    self.sched.note_stopped();
                }
            }
        }
    }

    /// Drains up to [`ACTIVATION_BATCH`] envelopes from `task`'s mailbox.
    fn activate(&mut self, task: &Arc<Task>) -> Activation {
        let mut cell = relock(&task.cell);
        if !cell.started {
            cell.started = true;
            self.dispatch(task.id, &mut cell, |a, ctx| a.on_start(ctx));
        }
        for _ in 0..ACTIVATION_BATCH {
            match task.pop_envelope() {
                None => return Activation::Drained,
                Some(Envelope::Stop) => {
                    if task.mark_stopped() {
                        self.sched.note_stopped();
                    }
                    return Activation::Stopped;
                }
                Some(Envelope::Msg { from, msg }) => {
                    self.process_msg(task.id, &mut cell, from, msg);
                }
                Some(Envelope::Fault(fault)) => {
                    self.dispatch(task.id, &mut cell, |a, ctx| a.on_fault(ctx, &fault));
                }
                Some(Envelope::Timer(kind)) => {
                    // Re-check liveness: a crash landing after the wheel
                    // fired but before this envelope ran still suppresses
                    // the callback.
                    if self.links.node_up(task.id) {
                        self.dispatch(task.id, &mut cell, |a, ctx| a.on_timer(ctx, kind));
                    } else {
                        self.stats.count_timer_suppressed();
                    }
                }
            }
        }
        Activation::Budget
    }

    /// One message delivery, with the delivery-time checks and credit
    /// accounting of the old per-actor loop.
    fn process_msg(&mut self, id: NodeId, cell: &mut ActorCell, from: NodeId, msg: NetMsg) {
        let tracked = self.links.tracks(&msg);
        // Delivery-time reachability: a link (or endpoint) that went down
        // while the message was in flight loses it.
        if self.links.reachable(from, id) {
            self.stats.count_delivered();
            let mark = self.dispatch(id, cell, |a, ctx| a.on_message(ctx, from, msg));
            if tracked {
                // Credit returns at the handler's consumption mark (the
                // modeled CPU completion), or right away for infinitely
                // fast consumers.
                match mark {
                    Some(at) if at > self.clock.now() => {
                        self.wheel.push_replenish(at, id, from);
                    }
                    _ => self.replenish(id, from),
                }
            }
        } else {
            self.stats.count_delivery_drop();
            if tracked {
                // A tracked loss still returns its credit — a broken link
                // must not shrink the window.
                self.replenish(id, from);
            }
        }
    }

    /// Runs one handler with a fresh context at the current instant.
    /// Returns the handler's consumption mark, if it set one.
    fn dispatch(
        &mut self,
        id: NodeId,
        cell: &mut ActorCell,
        f: impl FnOnce(&mut dyn DpcActor, &mut dyn RuntimeCtx),
    ) -> Option<Time> {
        let mut ctx = ThreadCtx {
            id,
            now: self.clock.now(),
            sched: &self.sched,
            worker: self.idx,
            links: &self.links,
            router: &mut self.router,
            stats: &self.stats,
            fabric: self.fabric.as_deref(),
            wheel: &mut self.wheel,
            rng: &mut cell.rng,
            consumed_at: None,
        };
        f(cell.actor.as_mut(), &mut ctx);
        ctx.consumed_at
    }
}

/// The fault controller: replays the script against the link table and
/// notifies affected actors, with the simulator's gating (a crashed node
/// hears nothing except its own `NodeDown`). Sleeps on its stop channel
/// between scripted instants — no polling.
fn fault_controller(
    script: Vec<(Time, FaultEvent)>,
    clock: MonotonicClock,
    links: Arc<LinkTable>,
    stats: Arc<RuntimeStats>,
    sched: Arc<Scheduler>,
    stop: Receiver<()>,
) {
    for (at, fault) in script {
        loop {
            let wait = clock.until(at);
            if wait.is_zero() {
                break;
            }
            match stop.recv_timeout(wait) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        // A crash purges the node's queued (credit-stalled) sends: those
        // are in-flight losses, counted like the simulator does.
        stats.count_delivery_drops(links.apply(&fault, clock.now()));
        for id in fault.notifies() {
            if !links.node_up(id) && !matches!(fault, FaultEvent::NodeDown(_)) {
                continue;
            }
            sched.push(id, Envelope::Fault(fault.clone()), None);
        }
    }
}

/// A running thread engine: a fixed worker pool multiplexing every actor,
/// plus the fault controller. Dropping it (or calling
/// [`ThreadRuntime::shutdown`]) stops every thread in order.
pub struct ThreadRuntime {
    sched: Arc<Scheduler>,
    workers: Vec<JoinHandle<()>>,
    fault_handle: Option<JoinHandle<()>>,
    fault_stop: Option<Sender<()>>,
    clock: MonotonicClock,
    links: Arc<LinkTable>,
    stats: Arc<RuntimeStats>,
}

impl ThreadRuntime {
    /// The pool size used when none is requested: the `BOREALIS_WORKERS`
    /// environment variable if set, else the machine's available
    /// parallelism clamped to `[2, 8]` (at least two so stealing is live
    /// even on one core; at most eight — the scaling target's pool size).
    pub fn default_workers() -> usize {
        if let Some(n) = std::env::var("BOREALIS_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }

    /// Spawns the engine with the default pool size
    /// ([`ThreadRuntime::default_workers`]); see
    /// [`ThreadRuntime::spawn_pooled`].
    pub fn spawn(
        actors: Vec<Box<dyn DpcActor>>,
        script: Vec<(Time, FaultEvent)>,
        seed: u64,
        partitions: Vec<(NodeId, PartitionSpec)>,
        flow_policy: CreditPolicy,
    ) -> ThreadRuntime {
        Self::spawn_pooled(
            actors,
            script,
            seed,
            partitions,
            flow_policy,
            Self::default_workers(),
        )
    }

    /// Spawns a pool of `workers` threads multiplexing every actor
    /// (`actors[i]` becomes `NodeId(i)`), plus a controller thread
    /// replaying `script` (already sorted by time). `partitions` declares
    /// key-sharded receivers: every data batch sent to such a node is
    /// filtered to its shard on the wire. `flow_policy` governs
    /// credit-based flow control on every link.
    ///
    /// Every actor starts Queued, so its `on_start` runs as soon as a
    /// worker picks it up; the clock starts just before the pool spawns.
    /// The OS-thread budget is exactly `workers + 1` spawned threads
    /// (pool + fault controller), independent of the topology size.
    pub fn spawn_pooled(
        actors: Vec<Box<dyn DpcActor>>,
        script: Vec<(Time, FaultEvent)>,
        seed: u64,
        partitions: Vec<(NodeId, PartitionSpec)>,
        flow_policy: CreditPolicy,
        workers: usize,
    ) -> ThreadRuntime {
        Self::spawn_with_fabric(actors, script, seed, partitions, flow_policy, workers, None)
    }

    /// [`ThreadRuntime::spawn_pooled`] plus an optional socket fabric
    /// ([`crate::tcp::TcpFabric`]): sends to actors the fabric plans in
    /// another process travel the wire, and the fabric's per-connection
    /// reader threads feed incoming frames into local mailboxes.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with_fabric(
        actors: Vec<Box<dyn DpcActor>>,
        script: Vec<(Time, FaultEvent)>,
        seed: u64,
        partitions: Vec<(NodeId, PartitionSpec)>,
        flow_policy: CreditPolicy,
        workers: usize,
        fabric: Option<Arc<TcpFabric>>,
    ) -> ThreadRuntime {
        let workers = workers.max(1);
        let clock = MonotonicClock::start();
        let links = Arc::new(LinkTable::with_config(partitions, flow_policy));
        let stats = Arc::new(RuntimeStats::default());
        // Faults scripted at t=0 shape the initial connectivity: apply them
        // before any worker starts, as the simulator does for faults
        // scheduled ahead of the Start events. (The controller re-applies
        // them idempotently and delivers the notifications.)
        for (at, fault) in script.iter().filter(|(at, _)| *at == Time::ZERO) {
            let _ = at;
            links.apply(fault, Time::ZERO);
        }
        let tasks = actors
            .into_iter()
            .enumerate()
            .map(|(i, actor)| {
                // Decorrelate per-actor streams from one shared seed —
                // identical to the per-thread engine's seeding, so runs
                // stay comparable across pool sizes.
                let rng = StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                );
                (actor, rng)
            })
            .collect();
        let sched = Arc::new(Scheduler::new(tasks, workers));
        if let Some(f) = &fabric {
            f.start_io(
                Arc::clone(&sched),
                Arc::clone(&links),
                Arc::clone(&stats),
                clock,
            );
        }
        let handles = (0..workers)
            .map(|idx| {
                let worker = Worker {
                    idx,
                    sched: Arc::clone(&sched),
                    links: Arc::clone(&links),
                    stats: Arc::clone(&stats),
                    fabric: fabric.clone(),
                    clock,
                    wheel: TimerWheel::new(),
                    router: ShardRouter::new(),
                };
                std::thread::Builder::new()
                    .name(format!("dpc-worker-{idx}"))
                    .spawn(move || worker.run())
                    .expect("spawn pool worker")
            })
            .collect();
        let (fault_stop, stop_rx) = channel();
        let fault_handle = {
            let links = Arc::clone(&links);
            let stats = Arc::clone(&stats);
            let sched = Arc::clone(&sched);
            Some(
                std::thread::Builder::new()
                    .name("dpc-faults".into())
                    .spawn(move || fault_controller(script, clock, links, stats, sched, stop_rx))
                    .expect("spawn fault controller"),
            )
        };
        ThreadRuntime {
            sched,
            workers: handles,
            fault_handle,
            fault_stop: Some(fault_stop),
            clock,
            links,
            stats,
        }
    }

    /// Time since the runtime started (the actors' clock).
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// The shared link table (for ad-hoc fault injection in tests; scripted
    /// runs should use the layout's fault script).
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.sched.workers()
    }

    /// Stops one task (used by the socket deployment to retire the inert
    /// stubs standing in for remote actors).
    pub(crate) fn stop_task(&self, id: NodeId) {
        self.sched.push(id, Envelope::Stop, None);
    }

    /// OS threads this runtime spawned: the pool plus the fault
    /// controller — `workers() + 1`, independent of how many actors run.
    pub fn spawned_threads(&self) -> usize {
        self.sched.workers() + 1
    }

    /// Point-in-time scheduler gauges (steals, queue depths, activation
    /// run-time histogram).
    pub fn sched_gauges(&self) -> SchedGauges {
        self.sched.gauges()
    }

    /// Message-loss statistics so far, including the transport's
    /// flow-control gauges and the pool's scheduler gauges.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.flow = self.links.flow_gauges();
        snap.sched = self.sched.gauges();
        snap
    }

    /// Lets the system run for `wall` — the actors make progress on the
    /// worker pool; this just blocks the caller.
    pub fn run_for(&self, wall: std::time::Duration) {
        std::thread::sleep(wall);
    }

    /// Stops every thread: the controller first (no further faults), then
    /// each actor after it drains its mailbox (Stop is an ordinary
    /// envelope, so everything queued before it is processed), then the
    /// pool. Returns final statistics.
    ///
    /// # Panics
    /// Panics if any actor panicked during the run — a protocol bug must
    /// fail the run, not silently degrade it to a partial deployment.
    pub fn shutdown(mut self) -> StatsSnapshot {
        let crashed = self.stop_threads();
        assert!(
            crashed.is_empty(),
            "actor thread(s) panicked during the run: {crashed:?}"
        );
        let mut snap = self.stats.snapshot();
        snap.flow = self.links.flow_gauges();
        snap.sched = self.sched.gauges();
        snap
    }

    /// Stops and joins everything; returns the names of actors that
    /// panicked.
    fn stop_threads(&mut self) -> Vec<String> {
        if let Some(stop) = self.fault_stop.take() {
            let _ = stop.send(());
        }
        if let Some(h) = self.fault_handle.take() {
            let _ = h.join();
        }
        for task in &self.sched.tasks {
            self.sched.push(task.id, Envelope::Stop, None);
        }
        self.sched.wait_all_stopped();
        self.sched.begin_exit();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Workers joined: nothing pushes concurrently, so the depth
        // gauges must now equal the actual queue lengths exactly.
        #[cfg(debug_assertions)]
        self.sched.debug_verify_depths();
        self.sched.crashed()
    }
}

impl Drop for ThreadRuntime {
    fn drop(&mut self) {
        let crashed = self.stop_threads();
        // Surface swallowed actor panics even when the runtime is dropped
        // without an explicit shutdown — unless we are already unwinding
        // (a double panic would abort and mask the original failure).
        if !crashed.is_empty() && !std::thread::panicking() {
            panic!("actor thread(s) panicked during the run: {crashed:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;
    use borealis_types::{Duration, StreamId};

    /// Records everything it receives; replies to heartbeats.
    struct Recorder {
        log: Arc<Mutex<Vec<(NodeId, &'static str)>>>,
        peer: Option<NodeId>,
    }

    impl DpcActor for Recorder {
        fn on_start(&mut self, ctx: &mut dyn RuntimeCtx) {
            if let Some(peer) = self.peer {
                ctx.send(peer, NetMsg::HeartbeatReq);
                ctx.set_timer(ctx.now() + Duration::from_millis(20), 7);
                // Delayed send: departs 40 ms in.
                ctx.send_after(
                    peer,
                    NetMsg::Unsubscribe {
                        stream: StreamId(0),
                    },
                    ctx.now() + Duration::from_millis(40),
                );
            }
        }
        fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, from: NodeId, msg: NetMsg) {
            self.log.lock().unwrap().push((from, msg.kind_name()));
        }
        fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, kind: u64) {
            assert_eq!(kind, 7);
            self.log.lock().unwrap().push((NodeId(u32::MAX), "timer"));
        }
        fn on_fault(&mut self, _ctx: &mut dyn RuntimeCtx, fault: &FaultEvent) {
            let tag = match fault {
                FaultEvent::LinkDown { .. } => "link-down",
                FaultEvent::LinkUp { .. } => "link-up",
                FaultEvent::NodeDown(_) => "node-down",
                FaultEvent::NodeUp(_) => "node-up",
                FaultEvent::Custom { .. } => "custom",
            };
            self.log.lock().unwrap().push((NodeId(u32::MAX), tag));
        }
    }

    fn wait_until(pred: impl Fn() -> bool, ms: u64) -> bool {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
        while std::time::Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        pred()
    }

    #[test]
    fn messages_timers_and_delayed_sends_flow() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let a = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: Some(NodeId(1)),
        });
        let b = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: None,
        });
        let rt = ThreadRuntime::spawn(
            vec![a, b],
            Vec::new(),
            1,
            Vec::new(),
            CreditPolicy::Unbounded,
        );
        assert!(
            wait_until(
                || {
                    let l = log.lock().unwrap();
                    l.contains(&(NodeId(0), "hb-req"))
                        && l.contains(&(NodeId(u32::MAX), "timer"))
                        && l.contains(&(NodeId(0), "unsubscribe"))
                },
                2000
            ),
            "log: {:?}",
            log.lock().unwrap()
        );
        let stats = rt.shutdown();
        assert_eq!(stats.total_drops(), 0);
        assert!(stats.messages_delivered >= 2);
        assert!(
            stats.sched.activations() >= 2,
            "activations must be accounted: {:?}",
            stats.sched
        );
    }

    #[test]
    fn scripted_link_failure_drops_and_notifies() {
        let log = Arc::new(Mutex::new(Vec::new()));
        // Link is down from the start; heals at 80 ms.
        let script = vec![
            (
                Time::ZERO,
                FaultEvent::LinkDown {
                    a: NodeId(0),
                    b: NodeId(1),
                },
            ),
            (
                Time::from_millis(80),
                FaultEvent::LinkUp {
                    a: NodeId(0),
                    b: NodeId(1),
                },
            ),
        ];
        let a = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: Some(NodeId(1)),
        });
        let b = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: None,
        });
        let rt = ThreadRuntime::spawn(vec![a, b], script, 1, Vec::new(), CreditPolicy::Unbounded);
        assert!(
            wait_until(
                || {
                    let l = log.lock().unwrap();
                    l.iter().filter(|e| e.1 == "link-up").count() >= 2
                },
                2000
            ),
            "both endpoints must hear the heal: {:?}",
            log.lock().unwrap()
        );
        // The delayed unsubscribe departs at 40 ms (link down): dropped at
        // send or delivery depending on the race with on_start's send.
        let stats = rt.shutdown();
        assert!(
            stats.total_drops() >= 1,
            "sends while the link was down must be counted: {stats:?}"
        );
        let l = log.lock().unwrap();
        assert!(
            !l.contains(&(NodeId(0), "hb-req")),
            "initial heartbeat was sent while down: {l:?}"
        );
    }

    #[test]
    fn crashed_node_fires_no_timers_and_hears_node_down() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let script = vec![(Time::ZERO, FaultEvent::NodeDown(NodeId(0)))];
        let a = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: Some(NodeId(1)),
        });
        let b = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: None,
        });
        let rt = ThreadRuntime::spawn(vec![a, b], script, 1, Vec::new(), CreditPolicy::Unbounded);
        assert!(
            wait_until(
                || log
                    .lock()
                    .unwrap()
                    .contains(&(NodeId(u32::MAX), "node-down")),
                2000
            ),
            "the crashing node observes its own NodeDown"
        );
        rt.run_for(std::time::Duration::from_millis(100));
        let stats = rt.shutdown();
        let l = log.lock().unwrap();
        assert!(
            !l.contains(&(NodeId(u32::MAX), "timer")),
            "crashed node must not fire timers: {l:?}"
        );
        assert!(
            stats.timers_suppressed >= 1 || stats.total_drops() >= 1,
            "the suppressed timer or dropped sends must be accounted: {stats:?}"
        );
    }

    #[test]
    fn pool_stays_fixed_size_regardless_of_actor_count() {
        // 200 actors on 3 workers: the engine spawns exactly workers + 1
        // OS threads (pool + fault controller), and the batch budget keeps
        // every mailbox moving.
        let log = Arc::new(Mutex::new(Vec::new()));
        let actors: Vec<Box<dyn DpcActor>> = (0..200)
            .map(|i| {
                Box::new(Recorder {
                    log: Arc::clone(&log),
                    // A ring: each actor heartbeats its successor.
                    peer: Some(NodeId(((i + 1) % 200) as u32)),
                }) as Box<dyn DpcActor>
            })
            .collect();
        let rt = ThreadRuntime::spawn_pooled(
            actors,
            Vec::new(),
            3,
            Vec::new(),
            CreditPolicy::Unbounded,
            3,
        );
        assert_eq!(rt.workers(), 3);
        assert_eq!(rt.spawned_threads(), 4, "workers + fault controller");
        assert!(
            wait_until(
                || log
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|e| e.1 == "hb-req")
                    .count()
                    >= 200,
                5000
            ),
            "every ring member must deliver its heartbeat"
        );
        let stats = rt.shutdown();
        assert_eq!(stats.total_drops(), 0);
        assert!(stats.messages_delivered >= 200);
        assert_eq!(stats.sched.workers, 3);
        assert!(
            stats.sched.activations() >= 200,
            "every actor ran at least once: {:?}",
            stats.sched
        );
    }

    #[test]
    fn actor_panic_is_contained_and_reported_at_shutdown() {
        struct Bomb;
        impl DpcActor for Bomb {
            fn on_start(&mut self, _ctx: &mut dyn RuntimeCtx) {
                panic!("boom");
            }
            fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, _from: NodeId, _msg: NetMsg) {}
            fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, _kind: u64) {}
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let survivor = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: None,
        });
        let rt = ThreadRuntime::spawn_pooled(
            vec![Box::new(Bomb), survivor],
            Vec::new(),
            1,
            Vec::new(),
            CreditPolicy::Unbounded,
            2,
        );
        // The panic takes down only actor 0; the pool keeps running and
        // shutdown reports the casualty.
        rt.run_for(std::time::Duration::from_millis(50));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.shutdown()))
            .expect_err("shutdown must surface the actor panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("dpc-actor-0"),
            "panic report names the actor: {msg}"
        );
    }
}
