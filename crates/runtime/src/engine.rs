//! The thread engine: one OS thread per actor, `std::sync::mpsc` channels
//! for messaging, a per-actor timer wheel against the monotonic clock, and
//! a fault-controller thread replaying scripted failures against the
//! shared link table.
//!
//! Event semantics mirror the simulator's kernel so the same protocol code
//! behaves identically under both runtimes:
//!
//! * sends check reachability at **send time** (counted drops) and again
//!   at **delivery time** (in-flight losses on a link that broke);
//! * timers due while an actor is crashed are consumed and suppressed;
//! * fault notifications reach an actor unless it is down (except its own
//!   `NodeDown`, which it observes so crash semantics stay scripted).
//!
//! Messages carry [`NetMsg`] values whose `Data` payloads are `Arc`-backed
//! [`TupleBatch`](borealis_types::TupleBatch) views: moving a batch across
//! a channel transfers a reference count, never copies tuples, so the
//! wall-clock data plane inherits the zero-copy fan-out of the simulator
//! path.

use crate::clock::MonotonicClock;
use crate::links::{LinkTable, RuntimeStats, StatsSnapshot};
use crate::wheel::{Due, TimerWheel};
use borealis_dpc::{DpcActor, NetMsg, RuntimeCtx};
use borealis_sim::{FaultEvent, ShardMsg};
use borealis_types::{CreditPolicy, Duration, NodeId, PartitionSpec, SendOutcome, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One delivery into an actor thread's mailbox.
enum Envelope {
    /// A protocol message from another actor.
    Msg { from: NodeId, msg: NetMsg },
    /// A fault notification from the controller.
    Fault(FaultEvent),
    /// Orderly shutdown: process everything queued before this, then exit.
    Stop,
}

/// Longest uninterrupted mailbox wait. Purely a liveness backstop (a wake
/// with nothing due is a no-op); timer deadlines shorten it.
const MAX_PARK: std::time::Duration = std::time::Duration::from_millis(100);

/// The single send-time delivery rule, shared by immediate sends and
/// delayed departures: reachability gates the handoff (counted drop
/// otherwise), the credit ledger gates data messages (queued at the sender
/// when the window is exhausted), and a send to an exited mailbox
/// (shutdown in progress) is dropped silently, like a connection reset
/// during teardown.
fn deliver(
    senders: &[Sender<Envelope>],
    links: &LinkTable,
    stats: &RuntimeStats,
    from: NodeId,
    to: NodeId,
    msg: NetMsg,
    now: Time,
) -> SendOutcome {
    if links.reachable(from, to) {
        // Partitioned send path: a key-sharded receiver gets only its shard
        // of the message (routing, not loss).
        let msg = match links.partition_of(to) {
            Some(spec) => match msg.partition(spec.as_ref()) {
                Some(m) => m,
                None => return SendOutcome::Delivered,
            },
            None => msg,
        };
        // Credit admission: a data message past the link window queues in
        // the shared ledger; the receiver's consumption releases it later.
        let msg = if links.tracks(&msg) {
            match links.admit(from, to, msg, now) {
                Some(m) => m,
                None => return SendOutcome::Queued,
            }
        } else {
            msg
        };
        if let Some(tx) = senders.get(to.index()) {
            let _ = tx.send(Envelope::Msg { from, msg });
        }
        SendOutcome::Delivered
    } else {
        stats.count_send_drop();
        SendOutcome::DroppedFault
    }
}

/// The [`RuntimeCtx`] handed to protocol handlers on an actor thread.
struct ThreadCtx<'a> {
    id: NodeId,
    now: Time,
    senders: &'a [Sender<Envelope>],
    links: &'a LinkTable,
    stats: &'a RuntimeStats,
    wheel: &'a mut TimerWheel,
    rng: &'a mut StdRng,
    /// The handler's consumption mark for the delivery being processed
    /// (credit returns then; see [`RuntimeCtx::data_consumed_at`]).
    consumed_at: Option<Time>,
}

impl RuntimeCtx for ThreadCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }

    fn id(&self) -> NodeId {
        self.id
    }

    fn send(&mut self, to: NodeId, msg: NetMsg) -> SendOutcome {
        deliver(
            self.senders,
            self.links,
            self.stats,
            self.id,
            to,
            msg,
            self.now,
        )
    }

    fn send_after(&mut self, to: NodeId, msg: NetMsg, depart: Time) -> SendOutcome {
        // Send-time reachability is checked NOW, as the simulator does for
        // its deferred sends; an unreachable destination at call time is a
        // counted send drop. Faults striking between here and the departure
        // are in-flight losses, caught by the departure/delivery checks.
        // Credit admission happens at the departure instant.
        if !self.links.reachable(self.id, to) {
            self.stats.count_send_drop();
            SendOutcome::DroppedFault
        } else if depart <= self.now {
            self.send(to, msg)
        } else {
            self.wheel.push_send(depart, to, msg);
            SendOutcome::Deferred
        }
    }

    fn data_consumed_at(&mut self, at: Time) {
        self.consumed_at = Some(at.max(self.now));
    }

    fn inbound_stall(&self, from: NodeId) -> Duration {
        self.links.stalled_for(from, self.id, self.now)
    }

    fn set_timer(&mut self, at: Time, kind: u64) {
        self.wheel.push_timer(at.max(self.now), kind);
    }

    fn reachable(&self, to: NodeId) -> bool {
        self.links.reachable(self.id, to)
    }

    fn rand_range(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }
}

/// Everything an actor thread owns.
struct ActorThread {
    id: NodeId,
    actor: Box<dyn DpcActor>,
    rx: Receiver<Envelope>,
    senders: Vec<Sender<Envelope>>,
    links: Arc<LinkTable>,
    stats: Arc<RuntimeStats>,
    clock: MonotonicClock,
    rng: StdRng,
    wheel: TimerWheel,
}

impl ActorThread {
    /// Runs one handler with a fresh context at the current instant.
    /// Returns the handler's consumption mark, if it set one.
    fn dispatch(&mut self, f: impl FnOnce(&mut dyn DpcActor, &mut dyn RuntimeCtx)) -> Option<Time> {
        let mut ctx = ThreadCtx {
            id: self.id,
            now: self.clock.now(),
            senders: &self.senders,
            links: &self.links,
            stats: &self.stats,
            wheel: &mut self.wheel,
            rng: &mut self.rng,
            consumed_at: None,
        };
        f(self.actor.as_mut(), &mut ctx);
        ctx.consumed_at
    }

    /// Returns the credit of one consumed delivery from `from` and hands
    /// the released queued message (if any) to this actor's own mailbox —
    /// the same delivery path as a fresh send, so the delivery-time checks
    /// still apply.
    fn replenish(&mut self, from: NodeId) {
        if let Some(msg) = self.links.consumed_release(from, self.id, self.clock.now()) {
            if let Some(tx) = self.senders.get(self.id.index()) {
                let _ = tx.send(Envelope::Msg { from, msg });
            }
        }
    }

    /// Fires every wheel entry due at `now`.
    fn fire_due(&mut self) {
        while let Some((_, due)) = self.wheel.pop_due(self.clock.now()) {
            match due {
                Due::Timer(kind) => {
                    // Crashed nodes fire no timers (the entry is consumed,
                    // as in the simulator).
                    if self.links.node_up(self.id) {
                        self.dispatch(|a, ctx| a.on_timer(ctx, kind));
                    } else {
                        self.stats.count_timer_suppressed();
                    }
                }
                Due::Send { to, msg } => {
                    // The send-time check already passed when this entry was
                    // scheduled; a link that broke since loses the message
                    // in flight (delivery drop, as in the simulator).
                    if self.links.reachable(self.id, to) {
                        deliver(
                            &self.senders,
                            &self.links,
                            &self.stats,
                            self.id,
                            to,
                            msg,
                            self.clock.now(),
                        );
                    } else {
                        self.stats.count_delivery_drop();
                    }
                }
                Due::Replenish { from } => {
                    // The modeled CPU finished a delivery: its credit
                    // returns now.
                    self.replenish(from);
                }
            }
        }
    }

    /// The thread main loop.
    fn run(mut self) {
        self.dispatch(|a, ctx| a.on_start(ctx));
        loop {
            self.fire_due();
            let park = match self.wheel.next_due() {
                Some(at) => self.clock.until(at).min(MAX_PARK),
                None => MAX_PARK,
            };
            match self.rx.recv_timeout(park) {
                Ok(Envelope::Msg { from, msg }) => {
                    let tracked = self.links.tracks(&msg);
                    // Delivery-time reachability: a link (or endpoint) that
                    // went down while the message was in flight loses it.
                    if self.links.reachable(from, self.id) {
                        self.stats.count_delivered();
                        let mark = self.dispatch(|a, ctx| a.on_message(ctx, from, msg));
                        if tracked {
                            // Credit returns at the handler's consumption
                            // mark (the modeled CPU completion), or right
                            // away for infinitely fast consumers.
                            match mark {
                                Some(at) if at > self.clock.now() => {
                                    self.wheel.push_replenish(at, from);
                                }
                                _ => self.replenish(from),
                            }
                        }
                    } else {
                        self.stats.count_delivery_drop();
                        if tracked {
                            // A tracked loss still returns its credit — a
                            // broken link must not shrink the window.
                            self.replenish(from);
                        }
                    }
                }
                Ok(Envelope::Fault(fault)) => {
                    self.dispatch(|a, ctx| a.on_fault(ctx, &fault));
                }
                Ok(Envelope::Stop) => break,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

/// The fault controller: replays the script against the link table and
/// notifies affected actors, with the simulator's gating (a crashed node
/// hears nothing except its own `NodeDown`).
fn fault_controller(
    script: Vec<(Time, FaultEvent)>,
    clock: MonotonicClock,
    links: Arc<LinkTable>,
    stats: Arc<RuntimeStats>,
    senders: Vec<Sender<Envelope>>,
    stop: Receiver<()>,
) {
    for (at, fault) in script {
        loop {
            let wait = clock.until(at);
            if wait.is_zero() {
                break;
            }
            match stop.recv_timeout(wait) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
        // A crash purges the node's queued (credit-stalled) sends: those
        // are in-flight losses, counted like the simulator does.
        stats.count_delivery_drops(links.apply(&fault, clock.now()));
        for id in fault.notifies() {
            if !links.node_up(id) && !matches!(fault, FaultEvent::NodeDown(_)) {
                continue;
            }
            if let Some(tx) = senders.get(id.index()) {
                let _ = tx.send(Envelope::Fault(fault.clone()));
            }
        }
    }
}

/// A running thread engine: one OS thread per actor plus the fault
/// controller. Dropping it (or calling [`ThreadRuntime::shutdown`]) stops
/// every thread in order.
pub struct ThreadRuntime {
    senders: Vec<Sender<Envelope>>,
    handles: Vec<JoinHandle<()>>,
    fault_handle: Option<JoinHandle<()>>,
    fault_stop: Option<Sender<()>>,
    clock: MonotonicClock,
    links: Arc<LinkTable>,
    stats: Arc<RuntimeStats>,
}

impl ThreadRuntime {
    /// Spawns one thread per actor (`actors[i]` becomes `NodeId(i)`), plus
    /// a controller thread replaying `script` (already sorted by time).
    /// `partitions` declares key-sharded receivers: every data batch sent
    /// to such a node is filtered to its shard on the wire. `flow_policy`
    /// governs credit-based flow control on every link.
    ///
    /// Every actor's `on_start` runs on its own thread as soon as it
    /// spawns; the clock starts just before the first spawn.
    pub fn spawn(
        actors: Vec<Box<dyn DpcActor>>,
        script: Vec<(Time, FaultEvent)>,
        seed: u64,
        partitions: Vec<(NodeId, PartitionSpec)>,
        flow_policy: CreditPolicy,
    ) -> ThreadRuntime {
        let clock = MonotonicClock::start();
        let links = Arc::new(LinkTable::with_config(partitions, flow_policy));
        let stats = Arc::new(RuntimeStats::default());
        // Faults scripted at t=0 shape the initial connectivity: apply them
        // before any actor thread starts, as the simulator does for faults
        // scheduled ahead of the Start events. (The controller re-applies
        // them idempotently and delivers the notifications.)
        for (at, fault) in script.iter().filter(|(at, _)| *at == Time::ZERO) {
            let _ = at;
            links.apply(fault, Time::ZERO);
        }
        let n = actors.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (i, (actor, rx)) in actors.into_iter().zip(receivers).enumerate() {
            let at = ActorThread {
                id: NodeId(i as u32),
                actor,
                rx,
                senders: senders.clone(),
                links: Arc::clone(&links),
                stats: Arc::clone(&stats),
                clock,
                // Decorrelate per-actor streams from one shared seed.
                rng: StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                ),
                wheel: TimerWheel::new(),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dpc-actor-{i}"))
                    .spawn(move || at.run())
                    .expect("spawn actor thread"),
            );
        }
        let (fault_stop, stop_rx) = channel();
        let fault_handle = {
            let links = Arc::clone(&links);
            let stats = Arc::clone(&stats);
            let senders = senders.clone();
            Some(
                std::thread::Builder::new()
                    .name("dpc-faults".into())
                    .spawn(move || fault_controller(script, clock, links, stats, senders, stop_rx))
                    .expect("spawn fault controller"),
            )
        };
        ThreadRuntime {
            senders,
            handles,
            fault_handle,
            fault_stop: Some(fault_stop),
            clock,
            links,
            stats,
        }
    }

    /// Time since the runtime started (the actors' clock).
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// The shared link table (for ad-hoc fault injection in tests; scripted
    /// runs should use the layout's fault script).
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// Message-loss statistics so far, including the transport's
    /// flow-control gauges.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.flow = self.links.flow_gauges();
        snap
    }

    /// Lets the system run for `wall` — the actors make progress on their
    /// own threads; this just blocks the caller.
    pub fn run_for(&self, wall: std::time::Duration) {
        std::thread::sleep(wall);
    }

    /// Stops every thread: the controller first (no further faults), then
    /// each actor after it drains its mailbox. Returns final statistics.
    ///
    /// # Panics
    /// Panics if any actor thread panicked during the run — a protocol bug
    /// must fail the run, not silently degrade it to a partial deployment.
    pub fn shutdown(mut self) -> StatsSnapshot {
        let crashed = self.stop_threads();
        assert!(
            crashed.is_empty(),
            "actor thread(s) panicked during the run: {crashed:?}"
        );
        let mut snap = self.stats.snapshot();
        snap.flow = self.links.flow_gauges();
        snap
    }

    /// Stops and joins everything; returns the names of threads that
    /// panicked.
    fn stop_threads(&mut self) -> Vec<String> {
        if let Some(stop) = self.fault_stop.take() {
            let _ = stop.send(());
        }
        if let Some(h) = self.fault_handle.take() {
            let _ = h.join();
        }
        for tx in &self.senders {
            let _ = tx.send(Envelope::Stop);
        }
        let mut crashed = Vec::new();
        for h in self.handles.drain(..) {
            let name = h.thread().name().unwrap_or("dpc-actor-?").to_string();
            if h.join().is_err() {
                crashed.push(name);
            }
        }
        crashed
    }
}

impl Drop for ThreadRuntime {
    fn drop(&mut self) {
        let crashed = self.stop_threads();
        // Surface swallowed actor panics even when the runtime is dropped
        // without an explicit shutdown — unless we are already unwinding
        // (a double panic would abort and mask the original failure).
        if !crashed.is_empty() && !std::thread::panicking() {
            panic!("actor thread(s) panicked during the run: {crashed:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{Duration, StreamId};
    use std::sync::Mutex;

    /// Records everything it receives; replies to heartbeats.
    struct Recorder {
        log: Arc<Mutex<Vec<(NodeId, &'static str)>>>,
        peer: Option<NodeId>,
    }

    impl DpcActor for Recorder {
        fn on_start(&mut self, ctx: &mut dyn RuntimeCtx) {
            if let Some(peer) = self.peer {
                ctx.send(peer, NetMsg::HeartbeatReq);
                ctx.set_timer(ctx.now() + Duration::from_millis(20), 7);
                // Delayed send: departs 40 ms in.
                ctx.send_after(
                    peer,
                    NetMsg::Unsubscribe {
                        stream: StreamId(0),
                    },
                    ctx.now() + Duration::from_millis(40),
                );
            }
        }
        fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, from: NodeId, msg: NetMsg) {
            self.log.lock().unwrap().push((from, msg.kind_name()));
        }
        fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, kind: u64) {
            assert_eq!(kind, 7);
            self.log.lock().unwrap().push((NodeId(u32::MAX), "timer"));
        }
        fn on_fault(&mut self, _ctx: &mut dyn RuntimeCtx, fault: &FaultEvent) {
            let tag = match fault {
                FaultEvent::LinkDown { .. } => "link-down",
                FaultEvent::LinkUp { .. } => "link-up",
                FaultEvent::NodeDown(_) => "node-down",
                FaultEvent::NodeUp(_) => "node-up",
                FaultEvent::Custom { .. } => "custom",
            };
            self.log.lock().unwrap().push((NodeId(u32::MAX), tag));
        }
    }

    fn wait_until(pred: impl Fn() -> bool, ms: u64) -> bool {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
        while std::time::Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        pred()
    }

    #[test]
    fn messages_timers_and_delayed_sends_flow() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let a = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: Some(NodeId(1)),
        });
        let b = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: None,
        });
        let rt = ThreadRuntime::spawn(
            vec![a, b],
            Vec::new(),
            1,
            Vec::new(),
            CreditPolicy::Unbounded,
        );
        assert!(
            wait_until(
                || {
                    let l = log.lock().unwrap();
                    l.contains(&(NodeId(0), "hb-req"))
                        && l.contains(&(NodeId(u32::MAX), "timer"))
                        && l.contains(&(NodeId(0), "unsubscribe"))
                },
                2000
            ),
            "log: {:?}",
            log.lock().unwrap()
        );
        let stats = rt.shutdown();
        assert_eq!(stats.total_drops(), 0);
        assert!(stats.messages_delivered >= 2);
    }

    #[test]
    fn scripted_link_failure_drops_and_notifies() {
        let log = Arc::new(Mutex::new(Vec::new()));
        // Link is down from the start; heals at 80 ms.
        let script = vec![
            (
                Time::ZERO,
                FaultEvent::LinkDown {
                    a: NodeId(0),
                    b: NodeId(1),
                },
            ),
            (
                Time::from_millis(80),
                FaultEvent::LinkUp {
                    a: NodeId(0),
                    b: NodeId(1),
                },
            ),
        ];
        let a = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: Some(NodeId(1)),
        });
        let b = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: None,
        });
        let rt = ThreadRuntime::spawn(vec![a, b], script, 1, Vec::new(), CreditPolicy::Unbounded);
        assert!(
            wait_until(
                || {
                    let l = log.lock().unwrap();
                    l.iter().filter(|e| e.1 == "link-up").count() >= 2
                },
                2000
            ),
            "both endpoints must hear the heal: {:?}",
            log.lock().unwrap()
        );
        // The delayed unsubscribe departs at 40 ms (link down): dropped at
        // send or delivery depending on the race with on_start's send.
        let stats = rt.shutdown();
        assert!(
            stats.total_drops() >= 1,
            "sends while the link was down must be counted: {stats:?}"
        );
        let l = log.lock().unwrap();
        assert!(
            !l.contains(&(NodeId(0), "hb-req")),
            "initial heartbeat was sent while down: {l:?}"
        );
    }

    #[test]
    fn crashed_node_fires_no_timers_and_hears_node_down() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let script = vec![(Time::ZERO, FaultEvent::NodeDown(NodeId(0)))];
        let a = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: Some(NodeId(1)),
        });
        let b = Box::new(Recorder {
            log: Arc::clone(&log),
            peer: None,
        });
        let rt = ThreadRuntime::spawn(vec![a, b], script, 1, Vec::new(), CreditPolicy::Unbounded);
        assert!(
            wait_until(
                || log
                    .lock()
                    .unwrap()
                    .contains(&(NodeId(u32::MAX), "node-down")),
                2000
            ),
            "the crashing node observes its own NodeDown"
        );
        rt.run_for(std::time::Duration::from_millis(100));
        let stats = rt.shutdown();
        let l = log.lock().unwrap();
        assert!(
            !l.contains(&(NodeId(u32::MAX), "timer")),
            "crashed node must not fire timers: {l:?}"
        );
        assert!(
            stats.timers_suppressed >= 1 || stats.total_drops() >= 1,
            "the suppressed timer or dropped sends must be accounted: {stats:?}"
        );
    }
}
