//! Network monitoring — the paper's motivating application (§1).
//!
//! Distributed network monitors feed flow records into a two-stage
//! dataflow: per-monitor filters keep suspicious flows, a union merges
//! them, and a windowed aggregate counts suspicious flows per source
//! prefix every second. When a partition cuts one monitor off, DPC keeps
//! producing *tentative* alert counts from the remaining monitors ("can
//! help detect at least a subset of all anomalous conditions") and, once
//! the partition heals, corrects them — "the administrator eventually sees
//! the complete list of problems that occurred during the partition."
//!
//! Run with: `cargo run --release --example network_monitoring`

use borealis::prelude::*;

fn main() {
    // --- The monitoring dataflow ------------------------------------------
    // Flow record: [src_prefix, bytes]. Suspicious = bytes above threshold.
    let mut q = QueryBuilder::new();
    let mon_a = q.source("monitor-A");
    let mon_b = q.source("monitor-B");
    let mon_c = q.source("monitor-C");
    // bytes (field 1) over threshold
    let suspicious = Expr::gt(Expr::field(1), Expr::int(800));
    let sa = q.filter("suspicious-A", mon_a, suspicious.clone());
    let sb = q.filter("suspicious-B", mon_b, suspicious.clone());
    let sc = q.filter("suspicious-C", mon_c, suspicious);
    let all = q.union("suspicious-all", &[sa, sb, sc]);
    let alerts = q.aggregate(
        "alert-counts",
        all,
        AggregateSpec {
            window: Duration::from_secs(1),
            slide: Duration::from_secs(1),
            group_by: vec![Expr::field(0)],
            aggs: vec![AggFn::count(), AggFn::max(Expr::field(1))],
        },
    );
    q.output(alerts);
    let diagram = q.build().expect("valid diagram");
    let alerts = alerts.id();

    // Two fragments, cut by operator name: filtering+merge near the
    // monitors, aggregation on a second node pair — a small distributed
    // deployment (Fig. 1).
    let spec = DeploymentSpec::new()
        .fragment(FragmentSpec::named("edge").ops([
            "suspicious-A",
            "suspicious-B",
            "suspicious-C",
            "suspicious-all",
        ]))
        .fragment(FragmentSpec::named("analytics").op("alert-counts"));
    let cfg = DpcConfig {
        // The operations team tolerates 4 seconds of extra alert latency.
        total_delay: Duration::from_secs(4),
        ..DpcConfig::default()
    };
    let plan = plan_deployment(&diagram, &spec, &cfg).expect("plannable");

    // --- Deployment --------------------------------------------------------
    // Monitors generate keyed flow records; ~1/5 of them are suspicious.
    let source = |stream: StreamHandle| SourceConfig {
        stream: stream.id(),
        rate: 200.0,
        boundary_interval: Duration::from_millis(100),
        batch_period: Duration::from_millis(10),
        values: ValueGen::Keyed { keys: 16 },
        limit: None,
    };
    // Map the sequence payload onto a bytes-like distribution: field 1 is
    // `seq`, so `seq % 1000 > 800` fires for ~20% of flows.
    // (The filter compares field 1 directly; Keyed yields [key, seq].)
    let metrics = MetricsHub::new();
    let mut sys = SystemBuilder::new(11, Duration::from_millis(1))
        .source(source(mon_a))
        .source(source(mon_b))
        .source(source(mon_c))
        .plan(plan)
        .client_streams(vec![alerts])
        .metrics(metrics)
        .fault(FaultSpec::DisconnectSource {
            // Partition: monitor C unreachable from the edge fragment for
            // 8 seconds.
            stream: mon_c.id(),
            frag: 0,
            from: Time::from_secs(10),
            to: Time::from_secs(18),
        })
        .build();
    sys.run_until(Time::from_secs(40));

    sys.metrics.with(alerts, |m| {
        println!("network-monitoring run (monitor C partitioned 10s-18s):");
        println!("  stable alert windows    : {}", m.n_stable);
        println!("  tentative alert windows : {}", m.n_tentative);
        println!("  corrections (undo/rec)  : {}/{}", m.n_undo, m.n_rec_done);
        println!("  max alert latency       : {}", m.procnew);
        println!("  duplicate stable alerts : {}", m.dup_stable);
        assert!(
            m.n_tentative > 0,
            "partial results must keep flowing during the partition"
        );
        assert!(
            m.n_rec_done >= 1,
            "the administrator eventually sees the full list"
        );
        assert_eq!(m.dup_stable, 0);
    });
    println!("\ntentative alerts flowed during the partition; the complete");
    println!("alert history was corrected once the partition healed.");
}
