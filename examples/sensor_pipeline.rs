//! Sensor-based environment monitoring — the paper's second motivating
//! application (§1): pipeline-health monitoring with correlated sensors.
//!
//! Two sensor feeds per pipeline segment (temperature and pressure) are
//! joined within a time window; a filter raises alerts on suspicious
//! combinations. This demonstrates the paper's §2.1 observation about
//! blocking operators: when the pressure feed disconnects, the Join has
//! nothing to match against — unlike the Union-based monitoring example,
//! the joined path produces *no* new results during the failure, while a
//! parallel union-based heartbeat path keeps flowing tentatively. Both are
//! corrected after the feed returns ("technicians dispatched to fix raised
//! problems can be quickly re-assigned as needed").
//!
//! Run with: `cargo run --release --example sensor_pipeline`

use borealis::prelude::*;

fn main() {
    let mut b = DiagramBuilder::new();
    // Sensor records: [segment_id, reading].
    let temperature = b.source("temperature");
    let pressure = b.source("pressure");

    // Path 1 (blocking): join temperature and pressure per segment within
    // 200 ms, then alert when both readings are in the anomalous band.
    let joined = b.add(
        "temp-pressure",
        LogicalOp::Join(JoinSpec {
            window: Duration::from_millis(200),
            left_key: Expr::field(0),
            right_key: Expr::field(0),
            max_state: Some(500),
        }),
        &[temperature, pressure],
    );
    let alerts = b.add(
        "anomalies",
        LogicalOp::Filter {
            // joined tuple: [seg, temp_reading, seg, pressure_reading]
            predicate: Expr::and(
                Expr::gt(Expr::field(1), Expr::float(0.75)),
                Expr::gt(Expr::field(3), Expr::float(0.75)),
            ),
        },
        &[joined],
    );
    b.output(alerts);

    // Path 2 (non-blocking): union of both feeds aggregated into per-window
    // liveness counts — keeps producing (tentatively) when one feed dies.
    let both = b.add("all-readings", LogicalOp::Union, &[temperature, pressure]);
    let liveness = b.add(
        "liveness",
        LogicalOp::Aggregate(AggregateSpec {
            window: Duration::from_secs(1),
            slide: Duration::from_secs(1),
            group_by: vec![],
            aggs: vec![AggFn::count()],
        }),
        &[both],
    );
    b.output(liveness);

    let diagram = b.build().expect("valid diagram");
    let cfg = DpcConfig {
        // Technicians "may be able to wait tens of seconds for more
        // accurate results": a generous 5-second budget.
        total_delay: Duration::from_secs(5),
        ..DpcConfig::default()
    };
    let plan = plan(&diagram, &Deployment::single(&diagram), &cfg).expect("plannable");

    let sensor = |stream| SourceConfig {
        stream,
        rate: 150.0,
        boundary_interval: Duration::from_millis(100),
        batch_period: Duration::from_millis(10),
        values: ValueGen::Reading {
            keys: 8,
            amplitude: 1.0,
        },
    };
    let mut sys = SystemBuilder::new(23, Duration::from_millis(1))
        .source(sensor(temperature))
        .source(sensor(pressure))
        .plan(plan)
        .replication(2)
        .client_streams(vec![alerts, liveness])
        .build();

    // The pressure feed disconnects for 10 seconds.
    sys.disconnect_source(pressure, 0, Time::from_secs(10), Time::from_secs(20));
    sys.run_until(Time::from_secs(40));

    let (join_stable, join_tentative) = sys.metrics.with(alerts, |m| (m.n_stable, m.n_tentative));
    let (live_stable, live_tentative, live_recdone) = sys
        .metrics
        .with(liveness, |m| (m.n_stable, m.n_tentative, m.n_rec_done));

    println!("sensor-pipeline run (pressure feed down 10s-20s):");
    println!("  joined-anomaly path : {join_stable} stable, {join_tentative} tentative");
    println!("  liveness path       : {live_stable} stable, {live_tentative} tentative, {live_recdone} corrected");
    assert!(
        live_tentative > 0,
        "the union path must keep producing tentatively during the failure"
    );
    assert!(live_recdone >= 1, "the liveness stream must be corrected");
    assert_eq!(sys.metrics.total_dup_stable(), 0);
    println!("\nthe blocking join paused while pressure was gone; the union-based");
    println!("liveness counts flowed tentatively and were corrected afterwards.");
}
