//! Sensor-based environment monitoring — the paper's second motivating
//! application (§1): pipeline-health monitoring with correlated sensors.
//!
//! Two sensor feeds per pipeline segment (temperature and pressure) are
//! joined within a time window; a filter raises alerts on suspicious
//! combinations. This demonstrates the paper's §2.1 observation about
//! blocking operators: when the pressure feed disconnects, the Join has
//! nothing to match against — unlike the Union-based monitoring example,
//! the joined path produces *no* new results during the failure, while a
//! parallel union-based heartbeat path keeps flowing tentatively. Both are
//! corrected after the feed returns ("technicians dispatched to fix raised
//! problems can be quickly re-assigned as needed").
//!
//! Run with: `cargo run --release --example sensor_pipeline`

use borealis::prelude::*;

fn main() {
    let mut q = QueryBuilder::new();
    // Sensor records: [segment_id, reading].
    let temperature = q.source("temperature");
    let pressure = q.source("pressure");

    // Path 1 (blocking): join temperature and pressure per segment within
    // 200 ms, then alert when both readings are in the anomalous band.
    let joined = q.join(
        "temp-pressure",
        temperature,
        pressure,
        JoinSpec {
            window: Duration::from_millis(200),
            left_key: Expr::field(0),
            right_key: Expr::field(0),
            max_state: Some(500),
        },
    );
    let alerts = q.filter(
        "anomalies",
        joined,
        // joined tuple: [seg, temp_reading, seg, pressure_reading]
        Expr::and(
            Expr::gt(Expr::field(1), Expr::float(0.75)),
            Expr::gt(Expr::field(3), Expr::float(0.75)),
        ),
    );
    q.output(alerts);

    // Path 2 (non-blocking): union of both feeds aggregated into per-window
    // liveness counts — keeps producing (tentatively) when one feed dies.
    let both = q.union("all-readings", &[temperature, pressure]);
    let liveness = q.aggregate(
        "liveness",
        both,
        AggregateSpec {
            window: Duration::from_secs(1),
            slide: Duration::from_secs(1),
            group_by: vec![],
            aggs: vec![AggFn::count()],
        },
    );
    q.output(liveness);

    let diagram = q.build().expect("valid diagram");
    let (alerts, liveness) = (alerts.id(), liveness.id());
    let cfg = DpcConfig {
        // Technicians "may be able to wait tens of seconds for more
        // accurate results": a generous 5-second budget.
        total_delay: Duration::from_secs(5),
        ..DpcConfig::default()
    };
    let plan = plan_deployment(&diagram, &DeploymentSpec::single(2), &cfg).expect("plannable");

    let sensor = |stream: StreamHandle| SourceConfig {
        stream: stream.id(),
        rate: 150.0,
        boundary_interval: Duration::from_millis(100),
        batch_period: Duration::from_millis(10),
        values: ValueGen::Reading {
            keys: 8,
            amplitude: 1.0,
        },
        limit: None,
    };
    let mut sys = SystemBuilder::new(23, Duration::from_millis(1))
        .source(sensor(temperature))
        .source(sensor(pressure))
        .plan(plan)
        .client_streams(vec![alerts, liveness])
        .fault(FaultSpec::DisconnectSource {
            // The pressure feed disconnects for 10 seconds.
            stream: pressure.id(),
            frag: 0,
            from: Time::from_secs(10),
            to: Time::from_secs(20),
        })
        .build();
    sys.run_until(Time::from_secs(40));

    let (join_stable, join_tentative) = sys.metrics.with(alerts, |m| (m.n_stable, m.n_tentative));
    let (live_stable, live_tentative, live_recdone) = sys
        .metrics
        .with(liveness, |m| (m.n_stable, m.n_tentative, m.n_rec_done));

    println!("sensor-pipeline run (pressure feed down 10s-20s):");
    println!("  joined-anomaly path : {join_stable} stable, {join_tentative} tentative");
    println!("  liveness path       : {live_stable} stable, {live_tentative} tentative, {live_recdone} corrected");
    assert!(
        live_tentative > 0,
        "the union path must keep producing tentatively during the failure"
    );
    assert!(live_recdone >= 1, "the liveness stream must be corrected");
    assert_eq!(sys.metrics.total_dup_stable(), 0);
    println!("\nthe blocking join paused while pressure was gone; the union-based");
    println!("liveness counts flowed tentatively and were corrected afterwards.");
}
