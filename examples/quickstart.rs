//! Quickstart: build a query diagram, deploy it with replication, inject a
//! failure, and watch DPC keep results flowing and then correct them.
//!
//! Run with: `cargo run --release --example quickstart`

use borealis::prelude::*;

fn main() {
    // --- 1. The query diagram -------------------------------------------
    // Three monitor streams, merged into one output stream.
    let mut q = QueryBuilder::new();
    let m1 = q.source("monitor-1");
    let m2 = q.source("monitor-2");
    let m3 = q.source("monitor-3");
    let merged = q.union("merged", &[m1, m2, m3]);
    q.output(merged);
    let diagram = q.build().expect("valid diagram");
    let merged = merged.id();

    // --- 2. DPC planning --------------------------------------------------
    // The application tolerates at most 2 seconds of extra latency; DPC
    // inserts SUnion/SOutput operators and assigns the delay budget. The
    // DeploymentSpec puts everything in one fragment with two replicas.
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(2),
        ..DpcConfig::default()
    };
    let plan = plan_deployment(&diagram, &DeploymentSpec::single(2), &cfg).expect("plannable");
    println!(
        "planned {} fragment(s), {} SUnion level(s), {} per-SUnion delay",
        plan.fragments.len(),
        plan.max_sunion_depth,
        plan.per_sunion_delay
    );

    // --- 3. Deployment ----------------------------------------------------
    // Each fragment runs on a replicated node pair; a client proxy watches
    // the output stream and records metrics. The failure script rides
    // along: monitor 3 unreachable from t=5s, healing at t=10s.
    let metrics = MetricsHub::new();
    metrics.enable_trace(merged);
    let mut sys = SystemBuilder::new(7, Duration::from_millis(1))
        .source(SourceConfig::seq(m1.id(), 100.0))
        .source(SourceConfig::seq(m2.id(), 100.0))
        .source(SourceConfig::seq(m3.id(), 100.0))
        .plan(plan)
        .client_streams(vec![merged])
        .metrics(metrics)
        .fault(FaultSpec::DisconnectSource {
            stream: m3.id(),
            frag: 0,
            from: Time::from_secs(5),
            to: Time::from_secs(10),
        })
        .build();
    sys.run_until(Time::from_secs(25));

    // --- 5. What the client saw -------------------------------------------
    sys.metrics.with(merged, |m| {
        println!("\nclient-side results for {merged}:");
        println!("  stable tuples     : {}", m.n_stable);
        println!(
            "  tentative tuples  : {} (produced while monitor 3 was gone)",
            m.n_tentative
        );
        println!("  undo markers      : {}", m.n_undo);
        println!(
            "  rec-done markers  : {} (stabilizations completed)",
            m.n_rec_done
        );
        println!(
            "  max proc latency  : {} (availability, bound 2 s + processing)",
            m.procnew
        );
        println!("  max data gap      : {}", m.max_gap);
        println!("  duplicate stables : {} (must be 0)", m.dup_stable);

        // A condensed view of the failure window from the arrival trace.
        let trace = m.trace.as_ref().expect("trace enabled");
        let mut last_kind = None;
        println!("\ncondensed event timeline:");
        for e in trace {
            let label = match e.kind {
                TupleKind::Insertion => "stable data",
                TupleKind::Tentative => "TENTATIVE data",
                TupleKind::Undo => "UNDO (roll back tentative suffix)",
                TupleKind::RecDone => "REC_DONE (stream corrected)",
                TupleKind::Boundary => continue,
            };
            if last_kind != Some(e.kind) {
                println!("  t={:>6}ms  {}", e.arrival.as_millis(), label);
                last_kind = Some(e.kind);
            }
        }
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_rec_done >= 1, "stabilization must complete");
    });
    println!("\nDPC kept results flowing during the failure and corrected them afterwards.");
}
