//! Financial services — another §1 application class: ticker feeds from
//! redundant exchanges.
//!
//! Two exchange gateways publish trades for the same instruments. A union
//! merges them, a per-instrument sliding-window aggregate computes a
//! moving average and trade count, and a filter flags bursts. Traders
//! prefer a fast approximate signal over a late exact one (low delay
//! threshold), but compliance eventually needs the exact history — DPC
//! provides both: tentative analytics within the bound during a gateway
//! outage, exact corrected analytics afterwards.
//!
//! Run with: `cargo run --release --example financial_feed`

use borealis::prelude::*;

fn main() {
    let mut q = QueryBuilder::new();
    // Trade record: [instrument, size].
    let gw1 = q.source("gateway-1");
    let gw2 = q.source("gateway-2");
    let trades = q.union("trades", &[gw1, gw2]);
    let analytics = q.aggregate(
        "per-instrument",
        trades,
        AggregateSpec {
            // 2-second windows sliding every 500 ms.
            window: Duration::from_secs(2),
            slide: Duration::from_millis(500),
            group_by: vec![Expr::field(0)],
            aggs: vec![AggFn::count(), AggFn::avg(Expr::field(1))],
        },
    );
    let bursts = q.filter(
        "bursts",
        analytics,
        // analytics tuple: [instrument, count, avg_size]
        Expr::gt(Expr::field(1), Expr::int(30)),
    );
    q.output(bursts);
    let diagram = q.build().expect("valid diagram");
    let bursts = bursts.id();

    // Traders tolerate only 1.5 s of extra latency.
    let cfg = DpcConfig {
        total_delay: Duration::from_secs_f64(1.5),
        ..DpcConfig::default()
    };
    let plan = plan_deployment(&diagram, &DeploymentSpec::single(2), &cfg).expect("plannable");

    let feed = |stream: StreamHandle| SourceConfig {
        stream: stream.id(),
        rate: 400.0,
        boundary_interval: Duration::from_millis(50),
        batch_period: Duration::from_millis(10),
        values: ValueGen::Keyed { keys: 12 },
        limit: None,
    };
    let mut sys = SystemBuilder::new(37, Duration::from_millis(1))
        .source(feed(gw1))
        .source(feed(gw2))
        .plan(plan)
        .client_streams(vec![bursts])
        .fault(FaultSpec::DisconnectSource {
            // Gateway 2 drops off the network for six seconds mid-session.
            stream: gw2.id(),
            frag: 0,
            from: Time::from_secs(12),
            to: Time::from_secs(18),
        })
        .build();
    sys.run_until(Time::from_secs(35));

    sys.metrics.with(bursts, |m| {
        println!("financial-feed run (gateway 2 down 12s-18s):");
        println!("  stable burst signals    : {}", m.n_stable);
        println!(
            "  tentative burst signals : {} (half the feed was missing)",
            m.n_tentative
        );
        println!("  corrections (undo/rec)  : {}/{}", m.n_undo, m.n_rec_done);
        println!(
            "  max signal latency      : {} (budget 1.5 s + processing)",
            m.procnew
        );
        println!("  duplicate stable        : {}", m.dup_stable);
        assert!(m.n_tentative > 0, "tentative analytics during the outage");
        assert!(m.n_rec_done >= 1, "compliance gets the exact history");
        assert_eq!(m.dup_stable, 0);
        // The one-gateway tentative window sees roughly half the trades, so
        // burst detection degrades but does not stop — the paper's
        // "fewer false positives/negatives than blocking entirely".
    });
    println!("\ntentative burst signals kept flowing during the outage; the exact");
    println!("per-instrument history was corrected once gateway 2 returned.");
}
