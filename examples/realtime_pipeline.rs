//! Real-time sharded benchmark: the key-partitioned chain (three sources →
//! ingest Union → an expensive "work" stage × K shards → deliver merge →
//! client) served by the multi-threaded wall-clock runtime — one OS thread
//! per source, shard replica, and client.
//!
//! Run with:
//! `cargo run --release --example realtime_pipeline [clean|overload|scale|tcp|recover]`
//!
//! **clean** — the K = 1/2/4 shard sweep at fixed offered load, plus the
//! K = 4 run with a scripted mid-run crash of one shard replica (the
//! checkpoint / tentative-release / reconciliation path under full load).
//!
//! **overload** — the credit-based flow-control study (`BENCH_PR5.json`):
//! offered load pushed past the single-instance work stage's saturation
//! point, at two credit-window sizes plus the metered-unbounded baseline.
//! With a bounded window the receiver-side in-flight depth stays pinned at
//! the window and the overload surfaces as *delayed* (tentative, later
//! corrected) buckets within the §6 delay budget; the unbounded baseline
//! shows the buffering growing without bound instead. A bounded-window run
//! at the reference configuration guards the clean-path throughput.
//!
//! **scale** — the worker-pool scheduler sweep (`BENCH_PR6.json`): a
//! fragments × workers grid up to 1040 fragments (16 chains × K=64) on an
//! 8-thread pool, a mid-run shard-replica crash at that scale, an OS
//! thread-count ceiling check (`workers + 2`), and a dedicated-thread
//! parity run at the reference configuration.
//!
//! **tcp** — the multi-process deployment (`BENCH_PR7.json`): the same
//! K = 4 reference chain forked across **three OS processes** over
//! loopback sockets (this binary re-execs itself as the worker
//! processes). Measures loopback throughput against the in-process
//! engine, the frame-coalescing ratio, a mid-run replica crash in a
//! worker process, and a bounded-window run proving credit grants ride
//! the wire as explicit frames.
//!
//! **recover** — the durable-restart study (`BENCH_PR9.json`): every node
//! replica writes periodic checkpoints and an append-only input log to a
//! per-node store. A durability-on run guards the reference throughput, a
//! worker **process** is SIGKILLed mid-run and respawned to restart from
//! disk (snapshot load + bounded log replay + mesh rejoin), and a
//! checkpoint-interval sweep shows the replayed log-suffix length and
//! recovery time tracking the interval.
//!
//! **saturate** — the capacity-knee study (`BENCH_PR10.json`): offered
//! load is ramped (geometric climb + bisection) to locate the highest
//! duplicate-free sustained stable throughput at K = 1/4/8 shards, clean
//! and through a mid-run shard-replica crash. The modeled per-tuple CPU
//! cost is dialed down to 1 µs so the *real* data plane — shard routing,
//! scheduler handoff, SUnion merge — is what saturates, not the synthetic
//! cost model. `SATURATE_WALL_SECS` overrides the per-probe run length.
//!
//! With no argument all sections run.
//!
//! Knobs: `REALTIME_RATE` (tuples/s per source, default 4000),
//! `REALTIME_WALL_SECS` (seconds per run, default 4).

use borealis::prelude::*;
use borealis_workloads::{
    run_tcp_child_args, run_tcp_parent, scale_grid_actors, scale_grid_builder,
    scale_grid_fragments, scale_grid_offered, sharded_chain_builder, ChildCommand, ScaleOptions,
    ShardedChainOptions, TcpChainSpec,
};

struct RunResult {
    shards: u32,
    throughput: f64,
    n_stable: u64,
    n_tentative: u64,
    dup: u64,
    drops: u64,
    max_gap: Duration,
    procnew: Duration,
    flow: FlowGauges,
}

fn options(shards: u32, per_source_rate: f64) -> ShardedChainOptions {
    ShardedChainOptions {
        shards,
        replication: 2,
        total_rate: per_source_rate * 3.0,
        per_node_delay: Duration::from_millis(500),
        light_cost: Duration::from_micros(2),
        work_cost: Duration::from_micros(40),
        seed: 7,
        ..Default::default()
    }
}

fn run_once(
    shards: u32,
    per_source_rate: f64,
    wall_secs: f64,
    crash: bool,
    policy: CreditPolicy,
) -> RunResult {
    let (mut builder, out) = sharded_chain_builder(&options(shards, per_source_rate));
    builder = builder.credit_policy(policy);
    if crash {
        // Kill replica 0 of work-stage shard 1 at t=1.5s, permanently:
        // DPC must checkpoint, fail over to the surviving replica, and
        // stabilize, all without disturbing the other shards.
        builder = builder.fault(FaultSpec::CrashReplica {
            frag: 1,
            shard: 1,
            replica: 0,
            from: Time::from_millis(1500),
            to: None,
        });
    }
    let sys = deploy_threads(builder.layout());
    let started = std::time::Instant::now();
    sys.run_for(std::time::Duration::from_secs_f64(wall_secs));
    let elapsed = started.elapsed().as_secs_f64();
    let (n_stable, n_tentative, dup, max_gap, procnew) = sys.metrics.with(out, |m| {
        (
            m.n_stable,
            m.n_tentative,
            m.dup_stable,
            m.max_gap,
            m.procnew,
        )
    });
    let flow = sys.flow_gauges();
    let drops = sys.shutdown();
    RunResult {
        shards,
        throughput: n_stable as f64 / elapsed,
        n_stable,
        n_tentative,
        dup,
        drops: drops.total_drops(),
        max_gap,
        procnew,
        flow,
    }
}

/// The K = 1/2/4 sharding sweep plus the mid-run crash run (BENCH_PR4's
/// reference measurements, unchanged).
fn clean_section(per_source_rate: f64, wall_secs: f64) {
    let offered = per_source_rate * 3.0;
    println!(
        "sharded realtime chain: {offered:.0} tuples/s offered, 40 µs/tuple work stage, \
         {wall_secs:.0}s per run\n"
    );
    println!("  K | actors | stable tuples | stable tuples/s | dup | drops");
    println!("  --+--------+---------------+-----------------+-----+------");
    let mut results = Vec::new();
    for shards in [1u32, 2, 4] {
        let r = run_once(
            shards,
            per_source_rate,
            wall_secs,
            false,
            CreditPolicy::Unbounded,
        );
        // 3 sources + 2 ingest + 2K work + 2 deliver + 1 client.
        let actors = 3 + 2 + 2 * shards + 2 + 1;
        println!(
            "  {} | {:>6} | {:>13} | {:>15.0} | {:>3} | {:>5}",
            r.shards, actors, r.n_stable, r.throughput, r.dup, r.drops
        );
        results.push(r);
    }

    let t1 = results[0].throughput;
    let t4 = results[2].throughput;
    println!(
        "\nscaling: K=4 sustains {:.2}x the stable throughput of K=1 at the same offered load",
        t4 / t1
    );

    for r in &results {
        assert_eq!(r.dup, 0, "K={}: no duplicate stable tuples", r.shards);
        assert_eq!(r.drops, 0, "K={}: healthy runs lose nothing", r.shards);
        assert!(
            r.n_stable > 1_000,
            "K={}: live traffic must flow ({} stable)",
            r.shards,
            r.n_stable
        );
    }
    assert!(
        t4 > t1 * 1.10,
        "sharding the saturated stage must raise stable throughput: K=1 {t1:.0}/s vs K=4 {t4:.0}/s"
    );
    println!(
        "key-partitioned sharding lifted the saturated stage past its single-instance ceiling."
    );

    // --- K=4 with a mid-run shard-replica crash -------------------------
    // Exercises the failure hot path: the O(#ops) copy-on-write checkpoint
    // at the detection instant, batch-range replay logs during the outage,
    // and view-based reconciliation replay.
    let c = run_once(4, per_source_rate, wall_secs, true, CreditPolicy::Unbounded);
    println!(
        "\ncrash run (K=4, shard replica killed at t=1.5s): \
         {:.0} stable tuples/s, {} stable, {} tentative, {} dup, {} drops",
        c.throughput, c.n_stable, c.n_tentative, c.dup, c.drops
    );
    assert_eq!(c.dup, 0, "failover must not duplicate stable tuples");
    assert!(
        c.drops > 0,
        "the scripted crash must actually sever traffic"
    );
    assert!(
        c.n_stable > 1_000,
        "stable output must keep flowing through the failure ({} stable)",
        c.n_stable
    );
    println!("failover kept the stable stream flowing, duplicate-free.");
}

/// The flow-control overload sweep: offered load past the K=1 work stage's
/// saturation point, at two credit-window sizes and the metered-unbounded
/// baseline, plus a bounded-window guard run at the reference config.
fn overload_section(per_source_rate: f64, wall_secs: f64) {
    // 24k offered into a work stage whose effective capacity (ingest +
    // emission both charge the modeled CPU) is ~12.5k tuples/s.
    let per_source_overload = 8_000.0;
    let offered = per_source_overload * 3.0;
    println!(
        "\noverload sweep: K=1, {offered:.0} tuples/s offered past saturation, \
         delay budget 500 ms/SUnion (1.5 s total), {wall_secs:.0}s per run\n"
    );
    println!(
        "  policy      | stable/s | tentative | inflight_peak | queued_peak | stall_time | max_gap | procnew"
    );
    println!(
        "  ------------+----------+-----------+---------------+-------------+------------+---------+--------"
    );

    let mut bounded = Vec::new();
    for window in [8u32, 32] {
        let r = run_once(
            1,
            per_source_overload,
            wall_secs,
            false,
            CreditPolicy::Window(window),
        );
        println!(
            "  window {window:>4} | {:>8.0} | {:>9} | {:>13} | {:>11} | {:>10} | {:>7} | {}",
            r.throughput,
            r.n_tentative,
            r.flow.inflight_peak,
            r.flow.queued_peak,
            r.flow.stall_time,
            r.max_gap,
            r.procnew
        );
        assert_eq!(r.dup, 0, "window {window}: no duplicate stable tuples");
        assert!(
            r.flow.inflight_peak <= window as u64,
            "window {window}: in-flight depth must be bounded by the credit window \
             (got {})",
            r.flow.inflight_peak
        );
        assert!(
            r.flow.stalls > 0 && r.flow.queued > 0,
            "window {window}: overload must actually stall the links: {:?}",
            r.flow
        );
        // The narrow window surfaces the overload within the run; the wide
        // one absorbs most of the burst first (that is the knob's trade:
        // window size = how much burst is smoothed before the §6 machinery
        // engages).
        if window == 8 {
            assert!(
                r.n_tentative > 0,
                "window {window}: the overload must surface as delayed tentative buckets"
            );
        }
        bounded.push(r);
    }

    let m = run_once(
        1,
        per_source_overload,
        wall_secs,
        false,
        CreditPolicy::Metered,
    );
    println!(
        "  metered     | {:>8.0} | {:>9} | {:>13} | {:>11} | {:>10} | {:>7} | {}",
        m.throughput,
        m.n_tentative,
        m.flow.inflight_peak,
        m.flow.queued_peak,
        m.flow.stall_time,
        m.max_gap,
        m.procnew
    );
    let widest = 32u64;
    assert!(
        m.flow.inflight_peak > 2 * widest,
        "the unbounded baseline must show monotonically growing buffering \
         (in-flight peak {} vs window {widest})",
        m.flow.inflight_peak
    );
    println!(
        "\nbounded windows pinned receiver-side buffering at the window; the unbounded \
         baseline grew to {}x the widest window.",
        m.flow.inflight_peak / widest
    );

    // --- Reference-config guard: credits must not tax the clean path ----
    let reference = run_once(
        4,
        per_source_rate,
        wall_secs,
        false,
        CreditPolicy::Unbounded,
    );
    let guarded = run_once(
        4,
        per_source_rate,
        wall_secs,
        false,
        CreditPolicy::Window(64),
    );
    println!(
        "\nreference config (K=4, {:.0}/s offered): unbounded {:.0} stable/s vs \
         window-64 {:.0} stable/s; procnew {} vs {}",
        per_source_rate * 3.0,
        reference.throughput,
        guarded.throughput,
        reference.procnew,
        guarded.procnew
    );
    assert!(
        guarded.throughput > reference.throughput * 0.85,
        "bounded credits must not regress clean-path throughput >15%: \
         {:.0} vs {:.0}",
        guarded.throughput,
        reference.throughput
    );
    let added = guarded.procnew.saturating_sub(reference.procnew);
    assert!(
        added <= Duration::from_millis(1500),
        "added delay at the reference config must stay inside the total \
         delay budget: +{added}"
    );
    println!("credit flow control held the reference path: <15% throughput delta, added delay {added} ≤ budget.");
}

/// OS threads of this process right now, from `/proc/self/status`
/// (`None` where procfs is unavailable).
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

struct ScaleResult {
    stable: u64,
    tentative: u64,
    dup: u64,
    drops: u64,
    threads: Option<usize>,
    sched: SchedGauges,
    elapsed: f64,
}

fn run_scale(o: &ScaleOptions, workers: usize, wall_secs: f64, crash: bool) -> ScaleResult {
    let (mut builder, outs) = scale_grid_builder(o);
    builder = builder.workers(workers);
    if crash {
        // Kill replica 0 of chain 1's work-stage shard 1 (logical fragment
        // 2) at t=1.5s, permanently: failover at scale, contained to one
        // chain out of thousands of fragments.
        builder = builder.fault(FaultSpec::CrashReplica {
            frag: 2,
            shard: 1,
            replica: 0,
            from: Time::from_millis(1500),
            to: None,
        });
    }
    let sys = deploy_threads(builder.layout());
    let started = std::time::Instant::now();
    sys.run_for(std::time::Duration::from_secs_f64(wall_secs));
    let elapsed = started.elapsed().as_secs_f64();
    let threads = os_threads();
    let sched = sys.sched_gauges();
    let (mut stable, mut tentative, mut dup) = (0u64, 0u64, 0u64);
    for out in &outs {
        sys.metrics.with(*out, |m| {
            stable += m.n_stable;
            tentative += m.n_tentative;
            dup += m.dup_stable;
        });
    }
    let drops = sys.shutdown();
    ScaleResult {
        stable,
        tentative,
        dup,
        drops: drops.total_drops(),
        threads,
        sched,
        elapsed,
    }
}

/// The worker-pool scaling sweep: a fragments × workers grid up to the
/// 1040-fragment / K=64 / 8-worker point, plus a mid-run shard-replica
/// crash at scale, all on a fixed pool of OS threads.
fn scale_section(per_source_rate: f64, wall_secs: f64) {
    println!(
        "\nscale sweep: chains × (K+1) fragments multiplexed onto a fixed worker pool, \
         {wall_secs:.0}s per run\n"
    );
    println!(
        "  chains |  K | fragments | actors | workers | offered/s | threads | stable/s | steals | parks | dup"
    );
    println!(
        "  -------+----+-----------+--------+---------+-----------+---------+----------+--------+-------+----"
    );
    // Per-chain rate shrinks as the grid grows — the point is actor count,
    // not offered load — but the *total* offered load (chains × rate) is
    // held at 800/s across all three points so the stable/s column is
    // comparable. (The earlier 16×25 = 400/s grid point made the
    // 1040-fragment row look like a throughput cliff when it was simply
    // offered half the input.)
    let grid = [
        (4u32, 4u32, 2usize, 200.0),
        (8, 16, 4, 100.0),
        (16, 64, 8, 50.0),
    ];
    let mut steals_total = 0u64;
    for (chains, shards, workers, rate) in grid {
        let o = ScaleOptions {
            chains,
            shards,
            rate_per_chain: rate,
            ..Default::default()
        };
        let fragments = scale_grid_fragments(&o);
        let actors = scale_grid_actors(&o);
        let r = run_scale(&o, workers, wall_secs, false);
        println!(
            "  {:>6} | {:>2} | {:>9} | {:>6} | {:>7} | {:>9.0} | {:>7} | {:>8.0} | {:>6} | {:>5} | {:>3}",
            chains,
            shards,
            fragments,
            actors,
            workers,
            scale_grid_offered(&o),
            r.threads.map_or_else(|| "?".into(), |t| t.to_string()),
            r.stable as f64 / r.elapsed,
            r.sched.steals,
            r.sched.parks,
            r.dup
        );
        assert_eq!(r.dup, 0, "{chains}x{shards}: no duplicate stable tuples");
        assert_eq!(r.drops, 0, "{chains}x{shards}: healthy runs lose nothing");
        assert!(
            r.stable > chains as u64 * 20,
            "{chains}x{shards}: every chain's output must flow ({} stable)",
            r.stable
        );
        // The pool must stay fixed-size no matter how many actors exist:
        // `workers` pool threads + the fault controller + the main thread.
        if let Some(t) = r.threads {
            assert!(
                t <= workers + 2,
                "{actors} actors may never exceed workers+2 OS threads (got {t})"
            );
        }
        assert!(
            r.sched.parks > 0,
            "idle workers must park, not spin: {:?}",
            r.sched
        );
        steals_total += r.sched.steals;
    }
    assert!(
        steals_total > 0,
        "imbalanced queues must trigger work stealing somewhere in the sweep"
    );
    println!(
        "\n1040 fragments ran on 8 pool threads (+ fault controller); idle actors cost \
         parks, not spins."
    );

    // --- Mid-run shard-replica crash at the 1040-fragment point ---------
    let o = ScaleOptions {
        chains: 16,
        shards: 64,
        rate_per_chain: 50.0,
        ..Default::default()
    };
    let c = run_scale(&o, 8, wall_secs + 2.0, true);
    println!(
        "crash at scale (1040 fragments, shard replica killed at t=1.5s): \
         {} stable, {} tentative, {} dup, {} drops",
        c.stable, c.tentative, c.dup, c.drops
    );
    assert_eq!(c.dup, 0, "failover at scale must not duplicate");
    assert!(
        c.drops > 0,
        "the scripted crash must actually sever traffic"
    );
    assert!(
        c.stable > 16 * 20,
        "stable output must keep flowing through the failure ({} stable)",
        c.stable
    );
    println!("failover at 1040 fragments stayed duplicate-free on the fixed pool.");

    // --- Dedicated-thread parity at today's scale -----------------------
    // BENCH_PR5 recorded 29249 stable/s for the K=4 reference config on
    // the dedicated-thread engine (REALTIME_RATE=10000, wall 8s). The
    // pooled engine must hold that within 10% at the same config.
    let r = run_once(
        4,
        per_source_rate,
        wall_secs,
        false,
        CreditPolicy::Unbounded,
    );
    println!(
        "\nreference config under the pool (K=4, {:.0}/s offered): {:.0} stable tuples/s",
        per_source_rate * 3.0,
        r.throughput
    );
    if per_source_rate >= 10_000.0 && wall_secs >= 8.0 {
        assert!(
            r.throughput >= 29_249.0 * 0.90,
            "the pooled scheduler must stay within 10% of the dedicated-thread \
             reference (29249 stable/s): got {:.0}",
            r.throughput
        );
        println!("pooled engine holds the dedicated-thread reference within 10%.");
    }
}

/// The multi-process socket section: the K = 4 reference chain forked
/// across three OS processes over loopback TCP (this binary re-execs
/// itself with the `__tcp_child` sentinel as the worker processes; the
/// parent process hosts the sources and the client).
fn tcp_section(per_source_rate: f64, wall_secs: f64) {
    let offered = per_source_rate * 3.0;
    println!(
        "\ntcp deployment: K=4 chain across 3 OS processes over loopback sockets, \
         {offered:.0} tuples/s offered, {wall_secs:.0}s per run\n"
    );
    let exe = std::env::current_exe().expect("own executable path");
    let child = ChildCommand {
        program: exe.to_string_lossy().into_owned(),
        prefix: vec!["__tcp_child".into()],
    };
    let spec = |crash: bool, window: Option<u32>| TcpChainSpec {
        shards: 4,
        per_source_rate,
        wall_ms: (wall_secs * 1000.0) as u64,
        crash,
        window,
        procs: 3,
        workers: 4,
        seed: 7,
        source_limit: None,
        ..TcpChainSpec::default()
    };

    // In-process reference at the identical config, then the same chain
    // with every fragment replica living in a forked worker process.
    let inproc = run_once(
        4,
        per_source_rate,
        wall_secs,
        false,
        CreditPolicy::Unbounded,
    );
    let clean = run_tcp_parent(&spec(false, None), &child).expect("tcp clean run");
    println!("  in-process  : {:.0} stable tuples/s", inproc.throughput);
    println!(
        "  loopback tcp: {:.0} stable tuples/s ({:.0}% of in-process), {} stable, {} dup",
        clean.throughput,
        100.0 * clean.throughput / inproc.throughput,
        clean.n_stable,
        clean.dup
    );
    println!(
        "  wire (proc 0): {} frames in {} flushes ({:.1} frames/syscall), \
         {} bytes sent, {} bytes received, {} conns",
        clean.wire.frames_sent,
        clean.wire.flushes,
        clean.wire.frames_per_flush(),
        clean.wire.bytes_sent,
        clean.wire.bytes_recv,
        clean.wire.conns
    );
    assert_eq!(clean.dup, 0, "sockets must not duplicate stable tuples");
    assert!(
        clean.n_stable > 1_000,
        "live traffic must flow across the wire ({} stable)",
        clean.n_stable
    );
    assert!(
        clean.wire.frames_per_flush() >= 1.0,
        "the writer must coalesce frames into syscalls: {:?}",
        clean.wire
    );
    // No drops assertion on clean tcp runs: at teardown the peer that sends
    // its Goodbye first makes the other side count a few late heartbeats as
    // send drops — benign shutdown skew, not data loss (dup == 0 and the
    // three-way equivalence test pin correctness).
    if per_source_rate >= 10_000.0 && wall_secs >= 8.0 {
        assert!(
            clean.throughput >= 29_249.0 * 0.80,
            "loopback TCP must hold ≥80% of the in-process reference \
             (29249 stable/s): got {:.0}",
            clean.throughput
        );
        println!("  loopback tcp holds ≥80% of the in-process reference.");
    }

    // --- Mid-run replica crash in a worker process -----------------------
    let crash = run_tcp_parent(&spec(true, None), &child).expect("tcp crash run");
    println!(
        "\ncrash run (work-shard replica killed at t=1.5s in a worker process): \
         {:.0} stable/s, {} stable, {} tentative, {} dup, {} drops",
        crash.throughput, crash.n_stable, crash.n_tentative, crash.dup, crash.drops
    );
    assert_eq!(crash.dup, 0, "cross-process failover must not duplicate");
    assert!(
        crash.drops > 0,
        "the scripted crash must sever traffic somewhere in the cluster"
    );
    assert!(
        crash.n_stable > 1_000,
        "stable output must keep flowing through the failure ({} stable)",
        crash.n_stable
    );

    // --- Bounded window: the credit protocol rides the wire --------------
    let windowed = run_tcp_parent(&spec(false, Some(64)), &child).expect("tcp windowed run");
    println!(
        "\nwindow-64 run: {:.0} stable/s; {} grant frames sent, {} received (proc 0)",
        windowed.throughput, windowed.wire.grants_sent, windowed.wire.grants_recv
    );
    assert_eq!(windowed.dup, 0);
    assert!(
        windowed.wire.grants_sent > 0 && windowed.wire.grants_recv > 0,
        "credit grants must ride the wire as explicit frames: {:?}",
        windowed.wire
    );
    println!(
        "credit flow control crossed process boundaries: grants on the wire, \
         failover duplicate-free."
    );
}

/// Scratch directory for a durable-store run, clean at entry.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("borealis-recover-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parses a `last_recovery.marker`: `(snapshot id, recover µs, replayed)`.
fn parse_marker(m: &str) -> (u64, u64, u64) {
    let field = |k: &str| {
        m.split(&format!("{k}="))
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64)
    };
    (field("snapshot"), field("recover_us"), field("replayed"))
}

/// Reads every node store's recovery marker under `root`.
fn recovery_markers(root: &std::path::Path) -> Vec<String> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return found;
    };
    for e in entries.flatten() {
        if let Ok(s) = std::fs::read_to_string(e.path().join("last_recovery.marker")) {
            found.push(s.trim().to_string());
        }
    }
    found
}

/// The durable-recovery section (`BENCH_PR9.json`): per-node durable
/// stores (background checkpoint flusher + append-only input log), a
/// durability-on throughput guard at the reference config, a worker
/// process SIGKILLed mid-run and respawned to restart from disk, and a
/// checkpoint-interval sweep quantifying the log-suffix length and
/// recovery time a restart pays.
fn recover_section(per_source_rate: f64, wall_secs: f64) {
    let offered = per_source_rate * 3.0;
    let wall_ms = (wall_secs * 1000.0) as u64;
    println!(
        "\ndurable recovery: K=4 chain, 250 ms background checkpoints + input log, \
         {offered:.0} tuples/s offered, {wall_secs:.0}s per run\n"
    );

    // --- Durability-on reference throughput ------------------------------
    // The CoW capture runs on the data path; serialization and fsync live
    // on the flusher thread — throughput must hold the durability-off
    // reference (29249 stable/s at the reference config).
    let root = scratch_dir("reference");
    let (mut builder, out) = sharded_chain_builder(&options(4, per_source_rate));
    builder = builder.durability(&root, Duration::from_millis(250), true);
    let sys = deploy_threads(builder.layout());
    let started = std::time::Instant::now();
    sys.run_for(std::time::Duration::from_secs_f64(wall_secs));
    let elapsed = started.elapsed().as_secs_f64();
    let (ref_stable, ref_dup) = sys.metrics.with(out, |m| (m.n_stable, m.dup_stable));
    sys.shutdown();
    let ref_throughput = ref_stable as f64 / elapsed;
    println!(
        "  durability on : {ref_throughput:.0} stable tuples/s ({ref_stable} stable, {ref_dup} dup)"
    );
    assert_eq!(ref_dup, 0, "durable clean run must not duplicate");
    assert!(
        ref_stable > 1_000,
        "live traffic must flow with durability on ({ref_stable} stable)"
    );
    if per_source_rate >= 10_000.0 && wall_secs >= 8.0 {
        assert!(
            ref_throughput >= 29_249.0 * 0.85,
            "durability must hold the reference throughput (29249 stable/s): \
             got {ref_throughput:.0}"
        );
        println!("  durability holds the 29249 stable/s reference within 15%.");
    }
    let _ = std::fs::remove_dir_all(&root);

    // --- Kill + respawn across OS processes ------------------------------
    // Worker process 1 (one replica of every fragment) dies by SIGKILL at
    // half-run and is respawned with `rejoin=true`: each of its nodes
    // reloads its latest checkpoint, replays the bounded input-log
    // suffix, re-dials the mesh, and rejoins DPC.
    let root = scratch_dir("tcp");
    let exe = std::env::current_exe().expect("own executable path");
    let child = ChildCommand {
        program: exe.to_string_lossy().into_owned(),
        prefix: vec!["__tcp_child".into()],
    };
    let spec = TcpChainSpec {
        shards: 4,
        per_source_rate,
        wall_ms,
        crash: false,
        window: None,
        procs: 3,
        workers: 4,
        seed: 7,
        source_limit: None,
        durable_dir: Some(root.to_string_lossy().into_owned()),
        restart: Some((1, wall_ms / 2)),
        ..TcpChainSpec::default()
    };
    let report = run_tcp_parent(&spec, &child).expect("tcp recover run");
    println!(
        "\nkill+respawn run (worker process 1 SIGKILLed at t={:.1}s, respawned): \
         {:.0} stable/s, {} stable, {} tentative, {} dup, {} drops",
        wall_ms as f64 / 2000.0,
        report.throughput,
        report.n_stable,
        report.n_tentative,
        report.dup,
        report.drops
    );
    assert_eq!(
        report.dup, 0,
        "disk recovery must not duplicate stable tuples"
    );
    assert!(
        report.n_stable > 1_000,
        "stable output must keep flowing through the kill ({} stable)",
        report.n_stable
    );
    assert!(
        !report.recoveries.is_empty(),
        "the respawned worker's nodes must restart from their durable stores"
    );
    for marker in &report.recoveries {
        let (snap, us, replayed) = parse_marker(marker);
        println!(
            "  recovered node: snapshot #{snap}, {replayed} log records replayed, \
             {:.1} ms to catch up",
            us as f64 / 1000.0
        );
        assert!(
            snap >= 1,
            "a mid-run restart must find a checkpoint: {marker}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);

    // --- Checkpoint-interval sweep ---------------------------------------
    // The interval buys off recovery work: a restarted node replays only
    // the input logged past its last snapshot, so the suffix length (and
    // the catch-up time) scales with the interval, not the run length.
    // The scripted restart kills work-shard 1's replica 0 at t=1.5s and
    // respawns it 300 ms later (the in-process analogue of the kill run).
    println!("\n  checkpoint | stable/s | post/pre rate | replayed | recover");
    println!("  -----------+----------+---------------+----------+--------");
    for interval_ms in [100u64, 250, 1000] {
        let root = scratch_dir(&format!("sweep-{interval_ms}"));
        let (mut builder, out) = sharded_chain_builder(&options(4, per_source_rate));
        let metrics = MetricsHub::new();
        metrics.enable_trace(out);
        builder = builder
            .metrics(metrics)
            .durability(&root, Duration::from_millis(interval_ms), true)
            .fault(FaultSpec::RestartReplica {
                frag: 1,
                shard: 1,
                replica: 0,
                after: Time::from_millis(1500),
            });
        let sys = deploy_threads(builder.layout());
        let started = std::time::Instant::now();
        sys.run_for(std::time::Duration::from_secs_f64(wall_secs));
        let elapsed = started.elapsed().as_secs_f64();
        let (n_stable, dup, trace) = sys
            .metrics
            .with(out, |m| (m.n_stable, m.dup_stable, m.trace.clone()));
        sys.shutdown();
        // Stable arrival rate in the second before the kill vs the second
        // after the respawned replica is back: the post-recovery dip.
        let rate_in = |from_ms: u64, to_ms: u64| {
            trace
                .as_ref()
                .map(|t| {
                    t.iter()
                        .filter(|e| {
                            e.kind == TupleKind::Insertion
                                && e.arrival >= Time::from_millis(from_ms)
                                && e.arrival < Time::from_millis(to_ms)
                        })
                        .count() as f64
                        / ((to_ms - from_ms) as f64 / 1000.0)
                })
                .unwrap_or(0.0)
        };
        let pre = rate_in(500, 1500);
        let post = rate_in(1800, 2800);
        let markers = recovery_markers(&root);
        let (_, us, replayed) = markers
            .first()
            .map(|m| parse_marker(m))
            .unwrap_or((0, 0, 0));
        println!(
            "  {:>7} ms | {:>8.0} | {:>12.0}% | {:>8} | {:>4.1} ms",
            interval_ms,
            n_stable as f64 / elapsed,
            100.0 * post / pre.max(1.0),
            replayed,
            us as f64 / 1000.0
        );
        assert_eq!(
            dup, 0,
            "interval {interval_ms} ms: duplicates after restart"
        );
        assert_eq!(
            markers.len(),
            1,
            "interval {interval_ms} ms: exactly the restarted replica recovers: {markers:?}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
    println!(
        "\nrestart cost tracks the checkpoint interval: the input log is truncated at \
         every published snapshot, so catch-up replays a bounded suffix."
    );
}

/// One saturation probe: the sharded chain with the modeled CPU dialed
/// down to 1 µs/tuple, so the *real* data plane — shard routing, scheduler
/// handoff, credit accounting, SUnion merge, client metrics — is the
/// measured object rather than the synthetic cost model. Replication stays
/// at 2, so every batch leaving a sharded producer fans out to 2K replica
/// links.
fn saturate_run(shards: u32, per_source_rate: f64, wall_secs: f64, crash: bool) -> RunResult {
    let opts = ShardedChainOptions {
        shards,
        replication: 2,
        total_rate: per_source_rate * 3.0,
        per_node_delay: Duration::from_millis(500),
        light_cost: Duration::from_micros(1),
        work_cost: Duration::from_micros(1),
        seed: 7,
        ..Default::default()
    };
    let (mut builder, out) = sharded_chain_builder(&opts);
    if crash {
        // Kill one work-stage shard replica at 40% of the run: the knee
        // must hold through checkpoint, failover, and reconciliation.
        builder = builder.fault(FaultSpec::CrashReplica {
            frag: 1,
            shard: if shards > 1 { 1 } else { 0 },
            replica: 0,
            from: Time::from_millis((wall_secs * 400.0) as u64),
            to: None,
        });
    }
    let sys = deploy_threads(builder.layout());
    let started = std::time::Instant::now();
    sys.run_for(std::time::Duration::from_secs_f64(wall_secs));
    let elapsed = started.elapsed().as_secs_f64();
    let (n_stable, n_tentative, dup, max_gap, procnew) = sys.metrics.with(out, |m| {
        (
            m.n_stable,
            m.n_tentative,
            m.dup_stable,
            m.max_gap,
            m.procnew,
        )
    });
    let flow = sys.flow_gauges();
    let drops = sys.shutdown();
    RunResult {
        shards,
        throughput: n_stable as f64 / elapsed,
        n_stable,
        n_tentative,
        dup,
        drops: drops.total_drops(),
        max_gap,
        procnew,
        flow,
    }
}

/// The highest sustained load found by the ramp, and what it measured.
struct Knee {
    /// Aggregate offered rate at the knee (tuples/s).
    offered: f64,
    /// Measured stable throughput there (the capacity figure).
    stable_per_s: f64,
    /// Probes spent locating it.
    probes: u32,
}

/// Locates the capacity knee for one configuration: geometric ramp of the
/// offered load until a run fails to sustain it, then two bisection steps
/// to tighten the bracket. "Sustained" means duplicate-free stable output
/// whose delivery efficiency (stable/offered) holds ≥95% (clean) / ≥90%
/// (crash) of the efficiency measured at the floor rate — normalizing out
/// the constant subscription-ramp and drain overhead at the run's edges.
fn find_knee(shards: u32, wall_secs: f64, crash: bool) -> Knee {
    let frac = if crash { 0.90 } else { 0.95 };
    let mut probes = 0u32;
    let mut one_run = |per_source: f64, floor_eff: f64| -> (bool, f64, f64) {
        probes += 1;
        let r = saturate_run(shards, per_source, wall_secs, crash);
        let offered = per_source * 3.0;
        let eff = r.throughput / offered;
        let ok = r.dup == 0 && eff >= floor_eff * frac;
        println!(
            "    K={} {}: offered {:>7.0}/s -> stable {:>7.0}/s ({:>5.1}%){}",
            shards,
            if crash { "crash" } else { "clean" },
            offered,
            r.throughput,
            100.0 * eff,
            if ok { "" } else { "  <- miss" },
        );
        (ok, r.throughput, eff)
    };
    // A single marginally-below-threshold run is scheduling noise, not the
    // knee: a failed probe only counts after a confirming re-run also fails.
    let mut probe = |per_source: f64, floor_eff: f64| -> (bool, f64, f64) {
        let first = one_run(per_source, floor_eff);
        if first.0 || floor_eff == 0.0 {
            return first;
        }
        one_run(per_source, floor_eff)
    };

    let mut lo = 4_000.0; // per-source floor: 12k/s aggregate
    let (_, mut best, floor_eff) = probe(lo, 0.0);
    assert!(
        floor_eff > 0.70,
        "K={shards} crash={crash}: the {:.0}/s floor must deliver most of the offered \
         load ({:.0}% measured)",
        lo * 3.0,
        floor_eff * 100.0
    );
    let mut hi = None;
    while hi.is_none() && lo < 700_000.0 {
        let next = lo * 1.6;
        let (ok, stable, _) = probe(next, floor_eff);
        if ok {
            lo = next;
            best = stable;
        } else {
            hi = Some(next);
        }
    }
    if let Some(mut hi) = hi {
        for _ in 0..2 {
            let mid = (lo + hi) / 2.0;
            let (ok, stable, _) = probe(mid, floor_eff);
            if ok {
                lo = mid;
                best = stable;
            } else {
                hi = mid;
            }
        }
    }
    Knee {
        offered: lo * 3.0,
        stable_per_s: best,
        probes,
    }
}

/// The saturation capacity study (`BENCH_PR10.json`): ramp the offered
/// load to locate the capacity knee — the highest duplicate-free sustained
/// stable throughput — at K = 1/4/8 shards, clean and through a mid-run
/// shard-replica crash. The knee, not the fixed 30k reference point, is
/// the number the routing data plane actually moves.
fn saturate_section(wall_secs: f64) {
    let wall: f64 = std::env::var("SATURATE_WALL_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| wall_secs.min(2.0));
    println!(
        "\nsaturation capacity: offered-load ramp to the knee, modeled CPU at 1 µs/tuple \
         (the real data plane is the measured object), replication 2, {wall:.1}s per probe\n"
    );
    // `SATURATE_FIXED_RATE` bypasses the knee search: one probe at the
    // given per-source rate, reporting delivered stable throughput. This is
    // the low-variance head-to-head mode for A/B capacity comparisons.
    if let Some(per_source) = std::env::var("SATURATE_FIXED_RATE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let shards: u32 = std::env::var("SATURATE_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4);
        let crash = std::env::var("SATURATE_CRASH").is_ok_and(|v| v == "1");
        let r = saturate_run(shards, per_source, wall, crash);
        println!(
            "fixed probe K={} crash={}: offered {:.0}/s -> stable {:.0}/s (dup {})",
            shards,
            crash,
            per_source * 3.0,
            r.throughput,
            r.dup
        );
        return;
    }
    // `SATURATE_SHARDS` restricts the sweep (comma-separated K list) so CI
    // and A/B comparisons can probe a single configuration quickly.
    let ks: Vec<u32> = std::env::var("SATURATE_SHARDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|ks: &Vec<u32>| !ks.is_empty())
        .unwrap_or_else(|| vec![1, 4, 8]);
    let crash_too = std::env::var("SATURATE_CRASH").map_or(true, |v| v != "0");
    let mut rows = Vec::new();
    for &k in &ks {
        let clean = find_knee(k, wall, false);
        let crash = crash_too.then(|| find_knee(k, wall.max(2.0), true));
        rows.push((k, clean, crash));
    }
    println!("\n  K | clean knee offered | clean stable/s | crash knee offered | crash stable/s");
    println!("  --+--------------------+----------------+--------------------+---------------");
    for (k, clean, crash) in &rows {
        let (co, cs) = crash
            .as_ref()
            .map_or((0.0, 0.0), |c| (c.offered, c.stable_per_s));
        println!(
            "  {} | {:>18.0} | {:>14.0} | {:>18.0} | {:>13.0}",
            k, clean.offered, clean.stable_per_s, co, cs
        );
    }
    let probes: u32 = rows
        .iter()
        .map(|(_, a, b)| a.probes + b.as_ref().map_or(0, |c| c.probes))
        .sum();
    let headline = rows.iter().find(|(k, ..)| *k == 4).unwrap_or(&rows[0]);
    println!(
        "\nsaturation_stable_tuples_per_s (K={} clean knee): {:.0}  ({} probes total)",
        headline.0, headline.1.stable_per_s, probes
    );
    for (k, clean, crash) in &rows {
        assert!(
            clean.stable_per_s > 10_000.0,
            "K={k}: the clean knee must clear 10k stable/s ({:.0})",
            clean.stable_per_s
        );
        if let Some(crash) = crash {
            assert!(
                crash.stable_per_s > clean.stable_per_s * 0.35,
                "K={k}: capacity must survive the mid-run crash ({:.0} vs clean {:.0})",
                crash.stable_per_s,
                clean.stable_per_s
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Forked worker process of the tcp section: argv carries the sentinel,
    // `proc=<i>`, and the serialized spec (including the full address map).
    if args.first().is_some_and(|a| a == "__tcp_child") {
        run_tcp_child_args(args.iter().skip(1).map(|s| s.as_str())).expect("tcp worker process");
        return;
    }
    let mode = args.first().cloned().unwrap_or_default();
    let per_source_rate: f64 = std::env::var("REALTIME_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000.0);
    let wall_secs: f64 = std::env::var("REALTIME_WALL_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);

    match mode.as_str() {
        "clean" => clean_section(per_source_rate, wall_secs),
        "overload" => overload_section(per_source_rate, wall_secs),
        "scale" => scale_section(per_source_rate, wall_secs),
        "tcp" => tcp_section(per_source_rate, wall_secs),
        "recover" => recover_section(per_source_rate, wall_secs),
        "saturate" => saturate_section(wall_secs),
        _ => {
            clean_section(per_source_rate, wall_secs);
            overload_section(per_source_rate, wall_secs);
            scale_section(per_source_rate, wall_secs);
            tcp_section(per_source_rate, wall_secs);
            recover_section(per_source_rate, wall_secs);
            saturate_section(wall_secs);
        }
    }
}
