//! Real-time quickstart: the same DPC deployment the simulator examples
//! use, served by the multi-threaded wall-clock runtime — one OS thread
//! per source, node replica, and client, real `mpsc` traffic, and a
//! scripted mid-run failure.
//!
//! Run with: `cargo run --release --example realtime_pipeline`
//!
//! Prints a wall-clock throughput figure (stable tuples delivered to the
//! client per second) — the number recorded in `BENCH_PR2.json`.

use borealis::prelude::*;

fn main() {
    // --- 1. The query diagram: three feeds merged into one. ---------------
    let mut b = DiagramBuilder::new();
    let m1 = b.source("feed-1");
    let m2 = b.source("feed-2");
    let m3 = b.source("feed-3");
    let merged = b.add("merged", LogicalOp::Union, &[m1, m2, m3]);
    b.output(merged);
    let diagram = b.build().expect("valid diagram");

    // --- 2. DPC planning: 600 ms incremental-latency budget. --------------
    let cfg = DpcConfig {
        total_delay: Duration::from_millis(600),
        ..DpcConfig::default()
    };
    let plan = plan(&diagram, &Deployment::single(&diagram), &cfg).expect("plannable");

    // --- 3. One description, deployed on OS threads. ----------------------
    // `SystemBuilder` resolves a runtime-independent layout; `deploy_threads`
    // launches it in wall-clock time (`.build()` would run the identical
    // layout under the deterministic simulator instead).
    // 6k tuples/s aggregate by default; override with REALTIME_RATE
    // (tuples/s per source) to probe saturation.
    let per_source_rate: f64 = std::env::var("REALTIME_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000.0);
    let metrics = MetricsHub::new();
    let mut builder = SystemBuilder::new(7, Duration::from_millis(1))
        .plan(plan)
        .replication(2)
        .client_streams(vec![merged])
        .metrics(metrics)
        .node_tuning(NodeTuning {
            per_tuple_cost: Duration::from_micros(5),
            ..NodeTuning::default()
        })
        // Feed 3 drops out from t=1.2s to t=2.2s — scripted against the
        // topology, so the same script drives either runtime. The window
        // ends early enough that reconciliation has ~2.8s of headroom even
        // on a heavily loaded machine (this run gates CI).
        .script_disconnect_source(m3, 0, Time::from_millis(1200), Time::from_millis(2200));
    for s in [m1, m2, m3] {
        builder = builder.source(SourceConfig::seq(s, per_source_rate));
    }
    let sys = deploy_threads(builder.layout());
    println!(
        "thread runtime up: {} actors (3 sources, 2 replicas, 1 client)",
        sys.fragment_replicas.iter().map(|r| r.len()).sum::<usize>() + 4
    );

    // --- 4. Serve real traffic for five wall-clock seconds. ---------------
    let wall = std::time::Duration::from_secs(5);
    let started = std::time::Instant::now();
    sys.run_for(wall);
    let elapsed = started.elapsed().as_secs_f64();

    // --- 5. What the client saw. ------------------------------------------
    let (n_stable, n_tentative, n_undo, n_rec_done, dup, procnew, lat_avg) =
        sys.metrics.with(merged, |m| {
            (
                m.n_stable,
                m.n_tentative,
                m.n_undo,
                m.n_rec_done,
                m.dup_stable,
                m.procnew,
                m.lat_avg(),
            )
        });
    let drops = sys.shutdown();
    let throughput = n_stable as f64 / elapsed;

    println!("\nclient-side results for {merged} after {elapsed:.2}s wall time:");
    println!("  stable tuples     : {n_stable}");
    println!("  tentative tuples  : {n_tentative} (produced while feed 3 was gone)");
    println!("  undo markers      : {n_undo}");
    println!("  rec-done markers  : {n_rec_done} (stabilizations completed)");
    println!("  max proc latency  : {procnew}");
    println!("  avg proc latency  : {lat_avg}");
    println!("  duplicate stables : {dup} (must be 0)");
    println!(
        "  dropped messages  : {} at send, {} in flight (the failure window)",
        drops.send_unreachable_drops, drops.delivery_drops
    );
    println!("\nwall-clock throughput: {throughput:.0} stable tuples/s");

    assert_eq!(dup, 0, "no duplicate stable tuples");
    assert!(n_stable > 1_000, "live traffic must flow");
    assert!(
        n_rec_done >= 1,
        "the scripted failure must stabilize before shutdown"
    );
    println!("\nDPC served wall-clock traffic through a failure and corrected it afterwards.");
}
