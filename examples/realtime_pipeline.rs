//! Real-time sharded benchmark: the key-partitioned chain (three sources →
//! ingest Union → an expensive "work" stage × K shards → deliver merge →
//! client) served by the multi-threaded wall-clock runtime — one OS thread
//! per source, shard replica, and client.
//!
//! Run with: `cargo run --release --example realtime_pipeline`
//!
//! The work stage costs 40 µs of modeled CPU per tuple, so a single
//! instance saturates well below the offered load; sharding it K ways by
//! `hash(key) % K` splits the bill across K replicated instances, each on
//! its own cores. The sweep measures stable client-side throughput at
//! K = 1, 2, 4 under the same offered load — the numbers recorded in
//! `BENCH_PR3.json`.
//!
//! Knobs: `REALTIME_RATE` (tuples/s per source, default 4000),
//! `REALTIME_WALL_SECS` (seconds per run, default 4).

use borealis::prelude::*;
use borealis_workloads::{sharded_chain_builder, ShardedChainOptions};

struct RunResult {
    shards: u32,
    throughput: f64,
    n_stable: u64,
    dup: u64,
    drops: u64,
}

fn run_once(shards: u32, per_source_rate: f64, wall_secs: f64) -> RunResult {
    let o = ShardedChainOptions {
        shards,
        replication: 2,
        total_rate: per_source_rate * 3.0,
        per_node_delay: Duration::from_millis(500),
        light_cost: Duration::from_micros(2),
        work_cost: Duration::from_micros(40),
        seed: 7,
        ..Default::default()
    };
    let (builder, out) = sharded_chain_builder(&o);
    let sys = deploy_threads(builder.layout());
    let started = std::time::Instant::now();
    sys.run_for(std::time::Duration::from_secs_f64(wall_secs));
    let elapsed = started.elapsed().as_secs_f64();
    let (n_stable, dup) = sys.metrics.with(out, |m| (m.n_stable, m.dup_stable));
    let drops = sys.shutdown();
    RunResult {
        shards,
        throughput: n_stable as f64 / elapsed,
        n_stable,
        dup,
        drops: drops.total_drops(),
    }
}

fn main() {
    let per_source_rate: f64 = std::env::var("REALTIME_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000.0);
    let wall_secs: f64 = std::env::var("REALTIME_WALL_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let offered = per_source_rate * 3.0;

    println!(
        "sharded realtime chain: {offered:.0} tuples/s offered, 40 µs/tuple work stage, \
         {wall_secs:.0}s per run\n"
    );
    println!("  K | actors | stable tuples | stable tuples/s | dup | drops");
    println!("  --+--------+---------------+-----------------+-----+------");
    let mut results = Vec::new();
    for shards in [1u32, 2, 4] {
        let r = run_once(shards, per_source_rate, wall_secs);
        // 3 sources + 2 ingest + 2K work + 2 deliver + 1 client.
        let actors = 3 + 2 + 2 * shards + 2 + 1;
        println!(
            "  {} | {:>6} | {:>13} | {:>15.0} | {:>3} | {:>5}",
            r.shards, actors, r.n_stable, r.throughput, r.dup, r.drops
        );
        results.push(r);
    }

    let t1 = results[0].throughput;
    let t4 = results[2].throughput;
    println!(
        "\nscaling: K=4 sustains {:.2}x the stable throughput of K=1 at the same offered load",
        t4 / t1
    );

    for r in &results {
        assert_eq!(r.dup, 0, "K={}: no duplicate stable tuples", r.shards);
        assert_eq!(r.drops, 0, "K={}: healthy runs lose nothing", r.shards);
        assert!(
            r.n_stable > 1_000,
            "K={}: live traffic must flow ({} stable)",
            r.shards,
            r.n_stable
        );
    }
    assert!(
        t4 > t1 * 1.10,
        "sharding the saturated stage must raise stable throughput: K=1 {t1:.0}/s vs K=4 {t4:.0}/s"
    );
    println!(
        "key-partitioned sharding lifted the saturated stage past its single-instance ceiling."
    );
}
