//! Real-time sharded benchmark: the key-partitioned chain (three sources →
//! ingest Union → an expensive "work" stage × K shards → deliver merge →
//! client) served by the multi-threaded wall-clock runtime — one OS thread
//! per source, shard replica, and client.
//!
//! Run with: `cargo run --release --example realtime_pipeline`
//!
//! The work stage costs 40 µs of modeled CPU per tuple, so a single
//! instance saturates well below the offered load; sharding it K ways by
//! `hash(key) % K` splits the bill across K replicated instances, each on
//! its own cores. The sweep measures stable client-side throughput at
//! K = 1, 2, 4 under the same offered load, then repeats the K = 4 run
//! with a scripted mid-run crash of one shard replica — the checkpoint /
//! tentative-release / reconciliation path under full load. The numbers
//! are recorded in `BENCH_PR4.json`.
//!
//! Knobs: `REALTIME_RATE` (tuples/s per source, default 4000),
//! `REALTIME_WALL_SECS` (seconds per run, default 4).

use borealis::prelude::*;
use borealis_workloads::{sharded_chain_builder, ShardedChainOptions};

struct RunResult {
    shards: u32,
    throughput: f64,
    n_stable: u64,
    n_tentative: u64,
    dup: u64,
    drops: u64,
}

fn options(shards: u32, per_source_rate: f64) -> ShardedChainOptions {
    ShardedChainOptions {
        shards,
        replication: 2,
        total_rate: per_source_rate * 3.0,
        per_node_delay: Duration::from_millis(500),
        light_cost: Duration::from_micros(2),
        work_cost: Duration::from_micros(40),
        seed: 7,
        ..Default::default()
    }
}

fn run_once(shards: u32, per_source_rate: f64, wall_secs: f64, crash: bool) -> RunResult {
    let (mut builder, out) = sharded_chain_builder(&options(shards, per_source_rate));
    if crash {
        // Kill replica 0 of work-stage shard 1 at t=1.5s, permanently:
        // DPC must checkpoint, fail over to the surviving replica, and
        // stabilize, all without disturbing the other shards.
        builder = builder.fault(FaultSpec::CrashReplica {
            frag: 1,
            shard: 1,
            replica: 0,
            from: Time::from_millis(1500),
            to: None,
        });
    }
    let sys = deploy_threads(builder.layout());
    let started = std::time::Instant::now();
    sys.run_for(std::time::Duration::from_secs_f64(wall_secs));
    let elapsed = started.elapsed().as_secs_f64();
    let (n_stable, n_tentative, dup) = sys
        .metrics
        .with(out, |m| (m.n_stable, m.n_tentative, m.dup_stable));
    let drops = sys.shutdown();
    RunResult {
        shards,
        throughput: n_stable as f64 / elapsed,
        n_stable,
        n_tentative,
        dup,
        drops: drops.total_drops(),
    }
}

fn main() {
    let per_source_rate: f64 = std::env::var("REALTIME_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000.0);
    let wall_secs: f64 = std::env::var("REALTIME_WALL_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let offered = per_source_rate * 3.0;

    println!(
        "sharded realtime chain: {offered:.0} tuples/s offered, 40 µs/tuple work stage, \
         {wall_secs:.0}s per run\n"
    );
    println!("  K | actors | stable tuples | stable tuples/s | dup | drops");
    println!("  --+--------+---------------+-----------------+-----+------");
    let mut results = Vec::new();
    for shards in [1u32, 2, 4] {
        let r = run_once(shards, per_source_rate, wall_secs, false);
        // 3 sources + 2 ingest + 2K work + 2 deliver + 1 client.
        let actors = 3 + 2 + 2 * shards + 2 + 1;
        println!(
            "  {} | {:>6} | {:>13} | {:>15.0} | {:>3} | {:>5}",
            r.shards, actors, r.n_stable, r.throughput, r.dup, r.drops
        );
        results.push(r);
    }

    let t1 = results[0].throughput;
    let t4 = results[2].throughput;
    println!(
        "\nscaling: K=4 sustains {:.2}x the stable throughput of K=1 at the same offered load",
        t4 / t1
    );

    for r in &results {
        assert_eq!(r.dup, 0, "K={}: no duplicate stable tuples", r.shards);
        assert_eq!(r.drops, 0, "K={}: healthy runs lose nothing", r.shards);
        assert!(
            r.n_stable > 1_000,
            "K={}: live traffic must flow ({} stable)",
            r.shards,
            r.n_stable
        );
    }
    assert!(
        t4 > t1 * 1.10,
        "sharding the saturated stage must raise stable throughput: K=1 {t1:.0}/s vs K=4 {t4:.0}/s"
    );
    println!(
        "key-partitioned sharding lifted the saturated stage past its single-instance ceiling."
    );

    // --- K=4 with a mid-run shard-replica crash -------------------------
    // Exercises the failure hot path this PR optimizes: the O(#ops)
    // copy-on-write checkpoint at the detection instant, batch-range replay
    // logs during the outage, and view-based reconciliation replay.
    let c = run_once(4, per_source_rate, wall_secs, true);
    println!(
        "\ncrash run (K=4, shard replica killed at t=1.5s): \
         {:.0} stable tuples/s, {} stable, {} tentative, {} dup, {} drops",
        c.throughput, c.n_stable, c.n_tentative, c.dup, c.drops
    );
    assert_eq!(c.dup, 0, "failover must not duplicate stable tuples");
    assert!(
        c.drops > 0,
        "the scripted crash must actually sever traffic"
    );
    assert!(
        c.n_stable > 1_000,
        "stable output must keep flowing through the failure ({} stable)",
        c.n_stable
    );
    println!("failover kept the stable stream flowing, duplicate-free.");
}
