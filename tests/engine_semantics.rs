//! Cross-crate semantic tests of the engine's DPC guarantees at the
//! fragment level: deterministic replay equivalence, operator composition
//! under failures, and window semantics across reconciliation.

use borealis::prelude::*;
use borealis_diagram::plan as plan_fn;
use borealis_engine::Fragment;

/// Builds a fragment: two sources → filter(value odd) on s1 → union →
/// tumbling count aggregate → output.
fn pipeline_fragment() -> (Fragment, StreamId, StreamId, StreamId) {
    let mut b = DiagramBuilder::new();
    let s1 = b.source("s1");
    let s2 = b.source("s2");
    let odd = b.add(
        "odd",
        LogicalOp::Filter {
            predicate: Expr::eq(Expr::modulo(Expr::field(0), Expr::int(2)), Expr::int(1)),
        },
        &[s1],
    );
    let merged = b.add("merged", LogicalOp::Union, &[odd, s2]);
    let counted = b.add(
        "counted",
        LogicalOp::Aggregate(AggregateSpec {
            window: Duration::from_millis(200),
            slide: Duration::from_millis(200),
            group_by: vec![],
            aggs: vec![AggFn::count(), AggFn::sum(Expr::field(0))],
        }),
        &[merged],
    );
    b.output(counted);
    let d = b.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(1),
        ..DpcConfig::default()
    };
    let p = plan_fn(&d, &Deployment::single(&d), &cfg).unwrap();
    (Fragment::from_plan(&p.fragments[0]), s1, s2, counted)
}

fn feed(f: &mut Fragment, stream: StreamId, id: u64, ms: u64, v: i64) -> Vec<(StreamId, Tuple)> {
    let t = Tuple::insertion(TupleId(id), Time::from_millis(ms), vec![Value::Int(v)]);
    f.push(stream, &t, Time::from_millis(ms)).tuples()
}

fn boundary(f: &mut Fragment, stream: StreamId, ms: u64) -> Vec<(StreamId, Tuple)> {
    let b = Tuple::boundary(TupleId::NONE, Time::from_millis(ms));
    f.push(stream, &b, Time::from_millis(ms)).tuples()
}

/// Two identical replicas fed the same tuples with different interleavings
/// produce byte-identical output — the core replica-consistency property
/// the SUnion serialization exists for (§4.2).
#[test]
fn replicas_stay_mutually_consistent() {
    let run = |swap: bool| {
        let (mut f, s1, s2, out) = pipeline_fragment();
        let mut emitted = Vec::new();
        for round in 0..10u64 {
            let ms = round * 100 + 10;
            if swap {
                emitted.extend(feed(&mut f, s2, round + 1, ms + 5, round as i64));
                emitted.extend(feed(&mut f, s1, round + 1, ms, round as i64));
            } else {
                emitted.extend(feed(&mut f, s1, round + 1, ms, round as i64));
                emitted.extend(feed(&mut f, s2, round + 1, ms + 5, round as i64));
            }
            emitted.extend(boundary(&mut f, s1, ms + 90));
            emitted.extend(boundary(&mut f, s2, ms + 90));
        }
        emitted
            .into_iter()
            .filter(|(s, t)| *s == out && t.is_data())
            .map(|(_, t)| (t.id, t.stime, t.values))
            .collect::<Vec<_>>()
    };
    let a = run(false);
    let b = run(true);
    assert!(!a.is_empty());
    assert_eq!(a, b, "replicas diverged under different arrival orders");
}

/// Aggregate windows spanning a failure are corrected exactly: the stable
/// correction for a window counts ALL tuples, not just the ones available
/// during the failure.
#[test]
fn window_corrections_count_missing_data() {
    let (mut f, s1, s2, out) = pipeline_fragment();
    // Healthy round.
    feed(&mut f, s1, 1, 50, 3);
    feed(&mut f, s2, 1, 60, 10);
    boundary(&mut f, s1, 190);
    boundary(&mut f, s2, 190);

    // s2 goes silent; s1 keeps flowing through stimes 200-400.
    feed(&mut f, s1, 2, 250, 5);
    boundary(&mut f, s1, 400);
    let released = f.tick(Time::from_millis(1500)).tuples(); // detection + tentative
    let tentative: Vec<&Tuple> = released
        .iter()
        .filter(|(s, t)| *s == out && t.is_tentative())
        .map(|(_, t)| t)
        .collect();
    assert!(!tentative.is_empty(), "tentative window expected");
    // Tentative window [200,400) counted only s1's odd tuple.
    let w = tentative.iter().find(|t| t.stime == Time::from_millis(400));
    if let Some(w) = w {
        assert_eq!(w.values[0], Value::Int(1), "only the available tuple");
    }

    // Heal: s2's backlog arrives with boundaries.
    feed(&mut f, s2, 2, 260, 20);
    feed(&mut f, s2, 3, 300, 30);
    boundary(&mut f, s1, 500);
    boundary(&mut f, s2, 500);
    assert!(f.can_reconcile());
    let mut all = f.reconcile(Time::from_millis(1600)).tuples();
    all.extend(f.finish_reconciliation(Time::from_millis(1700)).tuples());
    let corrected: Vec<&Tuple> = all
        .iter()
        .filter(|(s, t)| *s == out && t.is_stable_data())
        .map(|(_, t)| t)
        .collect();
    // The corrected [200,400) window must count s1's odd tuple AND both
    // s2 tuples: 3 total, sum 5+20+30 = 55.
    let w = corrected
        .iter()
        .find(|t| t.stime == Time::from_millis(400))
        .expect("corrected window");
    assert_eq!(w.values[0], Value::Int(3));
    assert_eq!(w.values[1], Value::Int(55));
}

/// The filter keeps operating on tentative data: failure-era tentative
/// output respects the same predicate as stable output.
#[test]
fn operators_apply_identically_to_tentative_data() {
    let (mut f, s1, s2, out) = pipeline_fragment();
    boundary(&mut f, s1, 10);
    boundary(&mut f, s2, 10);
    // s2 dies; even (filtered) and odd values arrive on s1.
    feed(&mut f, s1, 1, 100, 2); // filtered out
    feed(&mut f, s1, 2, 120, 7); // kept
    feed(&mut f, s1, 3, 350, 9); // kept, second window
    feed(&mut f, s1, 4, 450, 11); // kept, third window (closes the second)
    boundary(&mut f, s1, 400);
    let mut released = f.tick(Time::from_secs(3)).tuples();
    // A second tick releases the buckets the first release created inside
    // the fragment (mid-diagram SUnion, 300 ms Process-mode wait).
    released.extend(f.tick(Time::from_secs(4)).tuples());
    let windows: Vec<&Tuple> = released
        .iter()
        .filter(|(s, t)| *s == out && t.is_data())
        .map(|(_, t)| t)
        .collect();
    // Window [0,200): count 1 (only the 7); window [200,400): count 1 (the 9).
    assert_eq!(windows.len(), 2, "{windows:?}");
    assert!(windows.iter().all(|t| t.is_tentative()));
    assert_eq!(windows[0].values[0], Value::Int(1));
    assert_eq!(windows[1].values[0], Value::Int(1));
}

/// Repeated checkpoint/reconcile cycles keep regenerating identical ids —
/// the determinism that duplicate suppression (§4.4.2) relies on.
#[test]
fn repeated_reconciliations_stay_deterministic() {
    let (mut f, s1, s2, out) = pipeline_fragment();
    let mut stable_ids = Vec::new();
    for cycle in 0..3u64 {
        let base = cycle * 1000 + 100;
        // s2 silent for this cycle's first window.
        feed(&mut f, s1, cycle * 10 + 1, base, 1);
        boundary(&mut f, s1, base + 150);
        f.tick(Time::from_millis(base + 1200)); // tentative release
                                                // heal
        feed(&mut f, s2, cycle * 10 + 1, base + 20, 4);
        boundary(&mut f, s1, base + 900);
        boundary(&mut f, s2, base + 900);
        assert!(f.can_reconcile(), "cycle {cycle}");
        let mut tuples = f.reconcile(Time::from_millis(base + 1300)).tuples();
        tuples.extend(
            f.finish_reconciliation(Time::from_millis(base + 1400))
                .tuples(),
        );
        for (s, t) in tuples {
            if s == out && t.is_stable_data() {
                stable_ids.push(t.id);
            }
        }
    }
    assert!(
        stable_ids.len() >= 3,
        "three corrected windows: {stable_ids:?}"
    );
    assert!(
        stable_ids.windows(2).all(|w| w[0] < w[1]),
        "stable ids strictly increase across reconciliation cycles: {stable_ids:?}"
    );
}

/// Credit-stall surfacing at the fragment level: a stall on one input
/// stream outlasting its SUnion's detection delay takes the failure
/// checkpoint first (checkpoint-before-tentative, §4.4.1), flips the input
/// SUnion into UP_FAILURE, and starts the replay log — so when the stall
/// clears, standard reconciliation replays the stall era and emits it
/// stably, identically to a clean run.
#[test]
fn input_stall_checkpoints_declares_and_reconciles() {
    // Reference: a clean run of the same data.
    let clean = {
        let (mut f, s1, s2, _) = pipeline_fragment();
        let mut emitted = Vec::new();
        emitted.extend(feed(&mut f, s1, 1, 50, 3));
        emitted.extend(feed(&mut f, s2, 1, 120, 4));
        emitted.extend(boundary(&mut f, s1, 400));
        emitted.extend(boundary(&mut f, s2, 400));
        emitted
    };

    let (mut f, s1, s2, _) = pipeline_fragment();
    let mut emitted = Vec::new();
    emitted.extend(feed(&mut f, s1, 1, 50, 3));
    assert!(!f.is_tainted());

    // A short stall is ignored: no checkpoint, no failure.
    let b = f.note_input_stall(s1, Duration::from_millis(100), Time::from_millis(200));
    assert!(b.signals.is_empty());
    assert!(!f.is_tainted());

    // A long stall on s1: checkpoint, UP_FAILURE, recording on.
    let b = f.note_input_stall(s1, Duration::from_secs(5), Time::from_millis(300));
    assert!(b
        .signals
        .contains(&borealis::types::ControlSignal::UpFailure));
    assert!(f.is_tainted(), "checkpoint taken before the declaration");

    // The stall era's data arrives late and is recorded for replay; the
    // stalled input SUnion is in UP_FAILURE and its buffered bucket
    // releases tentatively under the failure-mode budget (into the
    // fragment-internal serializer, which buckets it in turn).
    emitted.extend(feed(&mut f, s2, 1, 120, 4));
    f.tick(Time::from_secs(2));
    use borealis::ops::sunion::Phase;
    assert!(
        f.input_phases().contains(&Phase::Failure),
        "the stalled input must be in UP_FAILURE: {:?}",
        f.input_phases()
    );

    // Stall clears: boundaries cover everything, the fragment reconciles,
    // and the replay reproduces the clean run's stable output.
    emitted.extend(boundary(&mut f, s1, 400));
    emitted.extend(boundary(&mut f, s2, 400));
    assert!(f.can_reconcile(), "corrected inputs enable reconciliation");
    let mut stable: Vec<(StreamId, Tuple)> = f.reconcile(Time::from_secs(3)).tuples();
    stable.extend(f.finish_reconciliation(Time::from_secs(3)).tuples());
    let stable_data: Vec<&Tuple> = stable
        .iter()
        .map(|(_, t)| t)
        .filter(|t| t.kind == TupleKind::Insertion)
        .collect();
    let clean_data: Vec<&Tuple> = clean
        .iter()
        .map(|(_, t)| t)
        .filter(|t| t.kind == TupleKind::Insertion)
        .collect();
    assert_eq!(
        stable_data, clean_data,
        "stall era reconciles to the clean run"
    );
}
