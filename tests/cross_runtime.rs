//! Cross-runtime equivalence: the same deployment description produces the
//! same *stable* output stream under the deterministic simulator and under
//! the real-time thread engine.
//!
//! This is the paper's eventual-consistency guarantee turned into a
//! portability test. Source stimes and payloads are pure functions of the
//! sequence number, SUnion serializes buckets deterministically by
//! `(stime, origin, id)`, and reconciliation replays corrections into the
//! identical stable prefix — so even though the thread engine's arrival
//! timing jitters (and may force tentative data the simulator never
//! produces), the corrected stable stream must be identical tuple for
//! tuple, in order, on both runtimes.

use borealis::prelude::*;
use borealis_workloads::{
    chain_builder, run_tcp_parent, sharded_chain_builder, ChainOptions, ChildCommand,
    ShardedChainOptions, TcpChainSpec, DISTRIBUTED_VARIANTS,
};

/// Reconstructs the stable output stream from a client arrival trace:
/// stable insertions append, UNDOs roll the suffix back to their target.
/// The result is the stream a durable consumer would have retained.
fn stable_stream(trace: &[borealis::dpc::TraceEntry]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = Vec::new();
    for e in trace {
        match e.kind {
            TupleKind::Insertion => v.push((e.id.0, e.stime.as_micros())),
            TupleKind::Undo => {
                let target = e.undo_target.map(|t| t.0).unwrap_or(0);
                while v.last().is_some_and(|&(id, _)| id > target) {
                    v.pop();
                }
            }
            _ => {}
        }
    }
    v
}

/// Serializes the tests in this binary. Every test here deploys on the
/// wall-clock thread engine (some additionally fork OS processes) and
/// compares the result against the virtual-time simulator; running them
/// concurrently oversubscribes the CPU far enough that keep-alives go
/// stale spuriously and the runs diverge for scheduling reasons, not
/// protocol ones.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Chain options tuned so a wall-clock run finishes in a few seconds.
fn fast_chain() -> ChainOptions {
    ChainOptions {
        depth: 2,
        total_rate: 300.0,
        per_node_delay: Duration::from_millis(500),
        variant: DISTRIBUTED_VARIANTS[1], // Process & Process
        per_tuple_cost: Duration::from_micros(10),
        // A starved wall-clock runner (1-CPU CI, debug profile, host
        // steal) can stall any thread past the default 250 ms staleness
        // window; stretched keep-alives make spurious failovers
        // impossible while the sim recomputes the identical reference.
        heartbeat_period: Duration::from_millis(400),
        seed: 21,
        ..Default::default()
    }
}

/// The chain workload with replication 2 and one scripted replica crash:
/// run under the simulator and under the thread runtime, the delivered
/// stable streams must be identical (same tuples, same order) over their
/// common prefix — the shorter run is a prefix of the longer one.
#[test]
fn chain_stable_stream_identical_across_runtimes() {
    let _serial = serial();
    let o = fast_chain();
    let crash_frag = o.depth - 1; // the fragment the client watches
    let horizon = Time::from_secs(6);

    // --- Simulator run ---------------------------------------------------
    let (builder, out) = chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder
        .metrics(metrics)
        .fault(FaultSpec::CrashReplica {
            frag: crash_frag,
            shard: 0,
            replica: 0,
            from: Time::from_millis(1500),
            to: None,
        })
        .build();
    sim_sys.run_until(horizon);
    let (sim_stable, sim_dups) = sim_sys.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });

    // --- Thread-runtime run ----------------------------------------------
    // The identical description — same topology, same scripted crash of the
    // client's initial upstream replica — deployed on OS threads.
    let (builder, out2) = chain_builder(&o);
    assert_eq!(out, out2, "same diagram, same output stream");
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let layout = builder
        .metrics(metrics)
        .fault(FaultSpec::CrashReplica {
            frag: crash_frag,
            shard: 0,
            replica: 0,
            from: Time::from_millis(1500),
            to: None,
        })
        .layout();
    let threads = deploy_threads(layout);
    threads.run_for(std::time::Duration::from_millis(4500));
    let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    let drops = threads.shutdown();

    // --- Equivalence ------------------------------------------------------
    assert_eq!(sim_dups, 0, "simulator run violated stable-id monotonicity");
    assert_eq!(thr_dups, 0, "thread run violated stable-id monotonicity");
    assert!(
        drops.send_unreachable_drops + drops.delivery_drops > 0,
        "the scripted crash must actually sever traffic: {drops:?}"
    );
    // Thresholds leave >4x headroom below the ~1350 tuples a nominal run
    // delivers, so a starved CI runner slows the stream without failing it.
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 300,
        "both runs must deliver a substantial stable stream: sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        thr_stable[..common],
        "stable streams diverge within the common prefix"
    );
}

/// Shard-merge determinism: the key-partitioned chain (ingest → work × K
/// shards → deliver) produces an identical stable output stream under the
/// simulator and the thread runtime, with one *shard replica* crashed
/// mid-run. The downstream SUnion's bucket-serialized merge of the shard
/// substreams — plus DPC's per-shard replica failover — must be
/// deterministic across runtimes.
#[test]
fn sharded_chain_stable_stream_identical_across_runtimes() {
    let _serial = serial();
    let o = ShardedChainOptions {
        shards: 2,
        total_rate: 300.0,
        per_node_delay: Duration::from_millis(500),
        work_cost: Duration::from_micros(10),
        light_cost: Duration::from_micros(5),
        heartbeat_period: Duration::from_millis(400),
        seed: 33,
        ..Default::default()
    };
    // Crash replica 0 of shard 1 of the "work" stage (logical fragment 1)
    // at t=1.5s, permanently: the shard's surviving replica must carry its
    // partition while everything else flows undisturbed.
    let crash = FaultSpec::CrashReplica {
        frag: 1,
        shard: 1,
        replica: 0,
        from: Time::from_millis(1500),
        to: None,
    };
    let horizon = Time::from_secs(6);

    let (builder, out) = sharded_chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder.metrics(metrics).fault(crash.clone()).build();
    sim_sys.run_until(horizon);
    let (sim_stable, sim_dups) = sim_sys.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });

    let (builder, out2) = sharded_chain_builder(&o);
    assert_eq!(out, out2, "same diagram, same output stream");
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let layout = builder.metrics(metrics).fault(crash).layout();
    assert!(
        !layout.partitions.is_empty(),
        "shard replicas carry partition filters"
    );
    let threads = deploy_threads(layout);
    threads.run_for(std::time::Duration::from_millis(4500));
    let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    let drops = threads.shutdown();

    assert_eq!(sim_dups, 0, "simulator run violated stable-id monotonicity");
    assert_eq!(thr_dups, 0, "thread run violated stable-id monotonicity");
    assert!(
        drops.send_unreachable_drops + drops.delivery_drops > 0,
        "the scripted shard crash must actually sever traffic: {drops:?}"
    );
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 300,
        "both runs must deliver a substantial stable stream: sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        thr_stable[..common],
        "sharded stable streams diverge within the common prefix"
    );
}

/// The slow-consumer overload chain: three sources → light ingest → a
/// work stage whose modeled CPU cannot keep up with the offered load →
/// light deliver → client. Under a bounded credit window the ingest→work
/// links stall, the work stage's input SUnions declare the overload, and
/// the client sees delayed (tentative, later corrected) buckets instead of
/// silent unbounded buffering.
fn overload_chain(
    policy: CreditPolicy,
    seed: u64,
    episode: Option<u64>,
) -> (SystemBuilder, StreamId) {
    let o = ShardedChainOptions {
        shards: 1,
        replication: 2,
        total_rate: 300.0,
        per_node_delay: Duration::from_millis(500),
        // ~170 tuples/s of effective work-stage capacity (ingest + emission
        // both charge the CPU) — well under the offered 300/s.
        work_cost: Duration::from_millis(3),
        light_cost: Duration::from_micros(5),
        // `Some(n)`: each source stops after n tuples — a finite overload
        // burst that later drains, so stabilization can complete. `None`:
        // sustained overload (the node never catches up, §4.4.2, so no
        // REC_DONE — used for the boundedness measurements).
        source_limit: episode,
        heartbeat_period: Duration::from_millis(400),
        seed,
        ..Default::default()
    };
    let (builder, out) = sharded_chain_builder(&o);
    (builder.credit_policy(policy), out)
}

/// Bounded credit window under sustained overload (simulator): the
/// receiver-side in-flight depth stays at the window while the unbounded
/// (metered) baseline grows monotonically with the horizon — the
/// ROADMAP's "delayed, not unboundedly buffered" contract, measured.
#[test]
fn overload_bounded_window_caps_inflight_where_baseline_grows() {
    let _serial = serial();
    // --- Bounded: Window(4), sustained overload --------------------------
    let (builder, out) = overload_chain(CreditPolicy::Window(4), 77, None);
    let mut sys = builder.build();
    sys.run_until(Time::from_secs(8));
    let g = sys.flow_gauges();
    assert!(g.queued > 0, "overload must force credit stalls: {g:?}");
    assert!(g.stalls > 0);
    assert!(g.stall_time > Duration::ZERO);
    assert!(
        g.inflight_peak <= 4,
        "in-flight depth bounded by the window: {g:?}"
    );
    let (n_stable, n_tentative, dup) = sys
        .metrics
        .with(out, |m| (m.n_stable, m.n_tentative, m.dup_stable));
    assert!(
        n_tentative > 0,
        "the stall must surface as tentative (delayed) buckets, not silence"
    );
    // Under *sustained* overload the node never catches up with normal
    // execution, so stabilization cannot complete (§4.4.2) — the episode
    // tests below cover the corrected path. Stable output still covers the
    // pre-detection era.
    assert!(n_stable >= 100, "pre-stall stable prefix: {n_stable}");
    assert_eq!(dup, 0);

    // --- Unbounded baseline (metered): buffering grows with the horizon --
    let peak_at = |secs: u64| {
        let (builder, _) = overload_chain(CreditPolicy::Metered, 77, None);
        let mut sys = builder.build();
        sys.run_until(Time::from_secs(secs));
        sys.flow_gauges().inflight_peak
    };
    let (peak4, peak8) = (peak_at(4), peak_at(8));
    assert!(
        peak8 > peak4,
        "unbounded baseline must keep growing: {peak4} → {peak8}"
    );
    assert!(
        peak8 > 4 * 4,
        "baseline buffering dwarfs the bounded window: {peak8}"
    );
}

/// Cross-runtime equivalence under credit-stall overload: the same
/// bounded-window slow-consumer deployment produces identical stable
/// output streams under the simulator and the thread engine — credit
/// backpressure may delay buckets, never reorder or drop stable data.
#[test]
fn overload_stable_stream_identical_across_runtimes() {
    let _serial = serial();
    let horizon = Time::from_secs(10);

    let (builder, out) = overload_chain(CreditPolicy::Window(4), 78, Some(150));
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder.metrics(metrics).build();
    sim_sys.run_until(horizon);
    let sim_gauges = sim_sys.flow_gauges();
    let (sim_stable, sim_dups) = sim_sys.metrics.with(out, |m| {
        // Availability through the stall (§6, Fig. 11's criterion): the
        // maximum gap between *new* tuples stays under the chain's total
        // delay budget (3 SUnion hops × 500 ms) — the overload manifests
        // as delayed buckets inside the budget, not as silence.
        assert!(
            m.max_gap <= Duration::from_millis(1500),
            "per-bucket added delay exceeded the delay budget: {}",
            m.max_gap
        );
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });

    let (builder, out2) = overload_chain(CreditPolicy::Window(4), 78, Some(150));
    assert_eq!(out, out2);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let threads = deploy_threads(builder.metrics(metrics).layout());
    threads.run_for(std::time::Duration::from_millis(8500));
    let thr_gauges = threads.flow_gauges();
    let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    threads.shutdown();

    assert!(sim_gauges.queued > 0, "sim run must stall: {sim_gauges:?}");
    assert!(
        thr_gauges.queued > 0,
        "thread run must stall: {thr_gauges:?}"
    );
    assert!(sim_gauges.inflight_peak <= 4);
    assert!(thr_gauges.inflight_peak <= 4);
    assert_eq!(sim_dups, 0);
    assert_eq!(thr_dups, 0);
    // The episode is 450 data tuples; the simulator run converges to all
    // of them stable (eventual consistency through the stall), and the
    // wall-clock run must match over the common prefix.
    assert_eq!(sim_stable.len(), 450, "sim run fully stabilized");
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 300,
        "both runs must deliver a substantial stable stream: sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        thr_stable[..common],
        "stable streams diverge under credit stalls"
    );
}

/// The overload scenario composed with a mid-run replica crash: one work
/// replica dies while its input links are credit-stalled. The crash purges
/// that replica's queued sends, failover moves the client stream to the
/// survivor, and the stable streams still match across runtimes.
#[test]
fn overload_with_replica_crash_identical_across_runtimes() {
    let _serial = serial();
    let crash = FaultSpec::CrashReplica {
        frag: 1, // the overloaded work stage
        shard: 0,
        replica: 0,
        from: Time::from_millis(2500),
        to: None,
    };
    let horizon = Time::from_secs(12);

    let (builder, out) = overload_chain(CreditPolicy::Window(4), 79, Some(150));
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder.metrics(metrics).fault(crash.clone()).build();
    sim_sys.run_until(horizon);
    let (sim_stable, sim_dups) = sim_sys.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });

    let (builder, _) = overload_chain(CreditPolicy::Window(4), 79, Some(150));
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let threads = deploy_threads(builder.metrics(metrics).fault(crash).layout());
    threads.run_for(std::time::Duration::from_millis(9000));
    let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    let drops = threads.shutdown();

    assert_eq!(sim_dups, 0);
    assert_eq!(thr_dups, 0);
    assert!(
        drops.total_drops() > 0,
        "the crash must sever traffic (stalled sends purged or in-flight lost): {drops:?}"
    );
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 250,
        "sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        thr_stable[..common],
        "stable streams diverge under overload + crash"
    );
}

/// Healthy-path equivalence at higher rate and no faults: sanity-checks
/// that wall-clock jitter alone (no failure handling involved) cannot
/// reorder or drop stable output.
#[test]
fn healthy_chain_stable_stream_identical_across_runtimes() {
    let _serial = serial();
    let o = ChainOptions {
        seed: 9,
        ..fast_chain()
    };

    let (builder, out) = chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder.metrics(metrics).build();
    sim_sys.run_until(Time::from_secs(4));
    let sim_stable = sim_sys
        .metrics
        .with(out, |m| stable_stream(m.trace.as_ref().unwrap()));

    let (builder, _) = chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let threads = deploy_threads(builder.metrics(metrics).layout());
    threads.run_for(std::time::Duration::from_millis(3000));
    let thr_stable = threads
        .metrics
        .with(out, |m| stable_stream(m.trace.as_ref().unwrap()));
    let drops = threads.shutdown();

    assert_eq!(drops.total_drops(), 0, "healthy run loses nothing");
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 250,
        "sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(sim_stable[..common], thr_stable[..common]);
}

/// The full portability ladder: the same [`TcpChainSpec`] deployment —
/// sharded chain, replication 2, one work-shard replica crashed mid-run —
/// executed (a) under the deterministic simulator, (b) on one in-process
/// worker pool, and (c) across **three OS processes** over loopback TCP,
/// must deliver byte-identical stable output over the common prefix.
///
/// This is the transport-independence guarantee the socket layer must not
/// break: credit windows ride the wire as explicit `CreditGrant` frames, a
/// torn connection is handled through the same NodeDown/purge path as an
/// in-process crash, and SUnion's deterministic bucket serialization makes
/// the corrected stable stream a function of the deployment description
/// alone — not of which transport carried it.
#[test]
fn stable_stream_identical_across_sim_threads_and_sockets() {
    let _serial = serial();
    let spec = TcpChainSpec {
        shards: 2,
        per_source_rate: 100.0,
        wall_ms: 4500,
        crash: true,
        window: None,
        procs: 3,
        workers: 2,
        seed: 33,
        source_limit: None,
        heartbeat_ms: 400,
        ..TcpChainSpec::default()
    };

    // (a) Deterministic simulator, virtual time.
    let (layout, out) = spec.layout(true);
    let mut sim_sys = layout.deploy_sim();
    sim_sys.run_until(Time::from_secs(6));
    let (sim_stable, sim_dups) = sim_sys.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });

    // (b) One process, worker-pool threads.
    let (layout, _) = spec.layout(true);
    let threads = deploy_threads(layout);
    threads.run_for(std::time::Duration::from_millis(spec.wall_ms));
    let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    threads.shutdown();

    // (c) Three OS processes over loopback sockets: this process hosts the
    // sources and the client; two forked `tcp_node` children host the
    // fragment replicas (same-fragment replicas in different processes).
    let child = ChildCommand {
        program: env!("CARGO_BIN_EXE_tcp_node").to_string(),
        prefix: Vec::new(),
    };
    let report = run_tcp_parent(&spec, &child).expect("tcp deployment runs");
    let tcp_stable = stable_stream(report.trace.as_ref().expect("trace enabled"));

    assert_eq!(sim_dups, 0, "simulator run violated stable-id monotonicity");
    assert_eq!(thr_dups, 0, "thread run violated stable-id monotonicity");
    assert_eq!(report.dup, 0, "socket run violated stable-id monotonicity");
    assert!(
        report.drops > 0,
        "the scripted crash must sever traffic somewhere in the cluster: {report:?}"
    );
    assert!(
        report.wire.frames_sent > 0 && report.wire.frames_recv > 0,
        "data must actually cross the wire: {:?}",
        report.wire
    );
    assert!(
        report.wire.frames_per_flush() >= 1.0,
        "the writer coalesces at least one frame per syscall: {:?}",
        report.wire
    );

    let common = sim_stable.len().min(thr_stable.len()).min(tcp_stable.len());
    assert!(
        common >= 300,
        "all three runs must deliver a substantial stable stream: sim={} threads={} tcp={}",
        sim_stable.len(),
        thr_stable.len(),
        tcp_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        thr_stable[..common],
        "thread run diverges from the simulator"
    );
    assert_eq!(
        sim_stable[..common],
        tcp_stable[..common],
        "socket run diverges from the simulator within the common prefix"
    );
}

/// Worker-count invariance: the sharded chain with a mid-run shard-replica
/// crash, deployed on pools of 1, 2, and 8 workers, must deliver the same
/// stable output stream as the single-threaded deterministic simulator —
/// over the common prefix, tuple for tuple. Pool sizing and steal
/// interleavings are scheduling details; the stable stream is a function of
/// the deployment description alone.
#[test]
fn stable_stream_invariant_across_worker_counts() {
    let _serial = serial();
    let o = ShardedChainOptions {
        shards: 2,
        total_rate: 300.0,
        per_node_delay: Duration::from_millis(500),
        work_cost: Duration::from_micros(10),
        light_cost: Duration::from_micros(5),
        heartbeat_period: Duration::from_millis(400),
        seed: 55,
        ..Default::default()
    };
    let crash = FaultSpec::CrashReplica {
        frag: 1,
        shard: 1,
        replica: 0,
        from: Time::from_millis(1500),
        to: None,
    };

    // Single-threaded simulator reference.
    let (builder, out) = sharded_chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder.metrics(metrics).fault(crash.clone()).build();
    sim_sys.run_until(Time::from_secs(6));
    let sim_stable = sim_sys
        .metrics
        .with(out, |m| stable_stream(m.trace.as_ref().expect("trace")));

    for workers in [1usize, 2, 8] {
        let (builder, _) = sharded_chain_builder(&o);
        let metrics = MetricsHub::new();
        metrics.enable_trace(out);
        let layout = builder
            .metrics(metrics)
            .fault(crash.clone())
            .workers(workers)
            .layout();
        assert_eq!(layout.workers, Some(workers));
        let threads = deploy_threads(layout);
        threads.run_for(std::time::Duration::from_millis(4000));
        let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
            (
                stable_stream(m.trace.as_ref().expect("trace")),
                m.dup_stable,
            )
        });
        threads.shutdown();

        assert_eq!(thr_dups, 0, "workers={workers}: duplicate stable tuples");
        let common = sim_stable.len().min(thr_stable.len());
        assert!(
            common >= 250,
            "workers={workers}: sim={} threads={}",
            sim_stable.len(),
            thr_stable.len()
        );
        assert_eq!(
            sim_stable[..common],
            thr_stable[..common],
            "workers={workers}: stable stream diverged from the simulator"
        );
    }
}

/// Scratch directory for a durable-store test, clean at entry.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "borealis-cross-durable-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads every node store's `last_recovery.marker` under `root`.
fn recovery_markers(root: &std::path::Path) -> Vec<String> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return found;
    };
    for e in entries.flatten() {
        if let Ok(s) = std::fs::read_to_string(e.path().join("last_recovery.marker")) {
            found.push(s.trim().to_string());
        }
    }
    found
}

/// Crash-then-restart with durable stores, sim vs threads: the replica the
/// client watches is killed mid-run and respawned 300 ms later; under both
/// runtimes it reloads its latest checkpoint from disk, replays the logged
/// input suffix, rejoins — and the delivered stable stream stays
/// byte-identical to the single-threaded simulator's, with zero duplicate
/// stable tuples.
#[test]
fn durable_restart_stable_stream_identical_across_runtimes() {
    let _serial = serial();
    let o = fast_chain();
    let frag = o.depth - 1; // the fragment the client watches
    let restart = FaultSpec::RestartReplica {
        frag,
        shard: 0,
        replica: 0,
        after: Time::from_millis(1500),
    };

    // --- Simulator run, durable stores on virtual time -------------------
    let sim_root = scratch("sim");
    let (builder, out) = chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder
        .metrics(metrics)
        .durability(&sim_root, Duration::from_millis(250), false)
        .fault(restart.clone())
        .build();
    sim_sys.run_until(Time::from_secs(6));
    let (sim_stable, sim_dups) = sim_sys.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    let sim_markers = recovery_markers(&sim_root);

    // --- Thread-runtime run, background flusher --------------------------
    let thr_root = scratch("threads");
    let (builder, out2) = chain_builder(&o);
    assert_eq!(out, out2);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let layout = builder
        .metrics(metrics)
        .durability(&thr_root, Duration::from_millis(250), true)
        .fault(restart)
        .layout();
    let threads = deploy_threads(layout);
    threads.run_for(std::time::Duration::from_millis(4500));
    let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    threads.shutdown();

    assert_eq!(sim_dups, 0, "sim restart re-delivered stable tuples");
    assert_eq!(thr_dups, 0, "thread restart re-delivered stable tuples");
    assert_eq!(
        sim_markers.len(),
        1,
        "exactly the respawned replica recovers from disk: {sim_markers:?}"
    );
    let thr_markers = recovery_markers(&thr_root);
    assert_eq!(
        thr_markers.len(),
        1,
        "thread runtime: exactly one disk recovery: {thr_markers:?}"
    );
    assert!(
        thr_markers[0].starts_with("snapshot="),
        "marker records the recovered snapshot: {}",
        thr_markers[0]
    );
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 300,
        "both runs must deliver a substantial stable stream: sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        thr_stable[..common],
        "disk recovery changed the stable output"
    );
    let _ = std::fs::remove_dir_all(&sim_root);
    let _ = std::fs::remove_dir_all(&thr_root);
}

/// Kill-then-respawn across OS processes: worker process 1 (hosting one
/// replica of every fragment) is SIGKILLed at t=2 s and respawned with
/// `rejoin=true`; its nodes reload their checkpoints from the durable
/// stores, replay their input-log suffixes, and re-dial the mesh. The
/// stable stream the client retains must match the failure-free
/// deterministic simulator run of the same spec, tuple for tuple, with
/// zero duplicates — the tentpole guarantee on the real transport.
#[test]
fn tcp_killed_worker_respawns_and_recovers_from_disk() {
    let _serial = serial();
    let root = scratch("tcp");
    let spec = TcpChainSpec {
        shards: 2,
        per_source_rate: 100.0,
        wall_ms: 5000,
        crash: false,
        window: None,
        procs: 3,
        workers: 2,
        seed: 33,
        source_limit: None,
        durable_dir: Some(root.to_string_lossy().into_owned()),
        restart: Some((1, 2000)),
        // Subscription cleanup on the kill comes from the connection
        // reset, not staleness — stretched keep-alives only remove the
        // spurious-failover hazard on a starved runner.
        heartbeat_ms: 400,
        ..TcpChainSpec::default()
    };

    // Failure-free simulator reference of the identical topology (no
    // durable stores — the sim must not seed the TCP run's directories;
    // durability does not change the layout's id space).
    let sim_spec = TcpChainSpec {
        durable_dir: None,
        restart: None,
        ..spec.clone()
    };
    let (layout, out) = sim_spec.layout(true);
    let mut sim_sys = layout.deploy_sim();
    sim_sys.run_until(Time::from_secs(6));
    let sim_stable = sim_sys
        .metrics
        .with(out, |m| stable_stream(m.trace.as_ref().expect("trace")));

    let child = ChildCommand {
        program: env!("CARGO_BIN_EXE_tcp_node").to_string(),
        prefix: Vec::new(),
    };
    let report = run_tcp_parent(&spec, &child).expect("tcp restart run");
    let tcp_stable = stable_stream(report.trace.as_ref().expect("trace enabled"));

    assert_eq!(report.dup, 0, "restart must not re-deliver stable tuples");
    assert!(
        report.drops > 0,
        "the kill must sever traffic somewhere: {report:?}"
    );
    assert!(
        !report.recoveries.is_empty(),
        "the respawned worker's nodes must recover from disk"
    );
    for marker in &report.recoveries {
        assert!(
            marker.starts_with("snapshot="),
            "marker records the recovered snapshot: {marker}"
        );
    }
    let common = sim_stable.len().min(tcp_stable.len());
    assert!(
        common >= 300,
        "both runs must deliver a substantial stable stream: sim={} tcp={}",
        sim_stable.len(),
        tcp_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        tcp_stable[..common],
        "kill + disk recovery changed the stable output on the wire"
    );
    let _ = std::fs::remove_dir_all(&root);
}
