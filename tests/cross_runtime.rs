//! Cross-runtime equivalence: the same deployment description produces the
//! same *stable* output stream under the deterministic simulator and under
//! the real-time thread engine.
//!
//! This is the paper's eventual-consistency guarantee turned into a
//! portability test. Source stimes and payloads are pure functions of the
//! sequence number, SUnion serializes buckets deterministically by
//! `(stime, origin, id)`, and reconciliation replays corrections into the
//! identical stable prefix — so even though the thread engine's arrival
//! timing jitters (and may force tentative data the simulator never
//! produces), the corrected stable stream must be identical tuple for
//! tuple, in order, on both runtimes.

use borealis::prelude::*;
use borealis_workloads::{
    chain_builder, sharded_chain_builder, ChainOptions, ShardedChainOptions, DISTRIBUTED_VARIANTS,
};

/// Reconstructs the stable output stream from a client arrival trace:
/// stable insertions append, UNDOs roll the suffix back to their target.
/// The result is the stream a durable consumer would have retained.
fn stable_stream(trace: &[borealis::dpc::TraceEntry]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = Vec::new();
    for e in trace {
        match e.kind {
            TupleKind::Insertion => v.push((e.id.0, e.stime.as_micros())),
            TupleKind::Undo => {
                let target = e.undo_target.map(|t| t.0).unwrap_or(0);
                while v.last().is_some_and(|&(id, _)| id > target) {
                    v.pop();
                }
            }
            _ => {}
        }
    }
    v
}

/// Chain options tuned so a wall-clock run finishes in a few seconds.
fn fast_chain() -> ChainOptions {
    ChainOptions {
        depth: 2,
        total_rate: 300.0,
        per_node_delay: Duration::from_millis(500),
        variant: DISTRIBUTED_VARIANTS[1], // Process & Process
        per_tuple_cost: Duration::from_micros(10),
        seed: 21,
        ..Default::default()
    }
}

/// The chain workload with replication 2 and one scripted replica crash:
/// run under the simulator and under the thread runtime, the delivered
/// stable streams must be identical (same tuples, same order) over their
/// common prefix — the shorter run is a prefix of the longer one.
#[test]
fn chain_stable_stream_identical_across_runtimes() {
    let o = fast_chain();
    let crash_frag = o.depth - 1; // the fragment the client watches
    let horizon = Time::from_secs(6);

    // --- Simulator run ---------------------------------------------------
    let (builder, out) = chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder
        .metrics(metrics)
        .fault(FaultSpec::CrashReplica {
            frag: crash_frag,
            shard: 0,
            replica: 0,
            from: Time::from_millis(1500),
            to: None,
        })
        .build();
    sim_sys.run_until(horizon);
    let (sim_stable, sim_dups) = sim_sys.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });

    // --- Thread-runtime run ----------------------------------------------
    // The identical description — same topology, same scripted crash of the
    // client's initial upstream replica — deployed on OS threads.
    let (builder, out2) = chain_builder(&o);
    assert_eq!(out, out2, "same diagram, same output stream");
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let layout = builder
        .metrics(metrics)
        .fault(FaultSpec::CrashReplica {
            frag: crash_frag,
            shard: 0,
            replica: 0,
            from: Time::from_millis(1500),
            to: None,
        })
        .layout();
    let threads = deploy_threads(layout);
    threads.run_for(std::time::Duration::from_millis(4500));
    let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    let drops = threads.shutdown();

    // --- Equivalence ------------------------------------------------------
    assert_eq!(sim_dups, 0, "simulator run violated stable-id monotonicity");
    assert_eq!(thr_dups, 0, "thread run violated stable-id monotonicity");
    assert!(
        drops.send_unreachable_drops + drops.delivery_drops > 0,
        "the scripted crash must actually sever traffic: {drops:?}"
    );
    // Thresholds leave >4x headroom below the ~1350 tuples a nominal run
    // delivers, so a starved CI runner slows the stream without failing it.
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 300,
        "both runs must deliver a substantial stable stream: sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        thr_stable[..common],
        "stable streams diverge within the common prefix"
    );
}

/// Shard-merge determinism: the key-partitioned chain (ingest → work × K
/// shards → deliver) produces an identical stable output stream under the
/// simulator and the thread runtime, with one *shard replica* crashed
/// mid-run. The downstream SUnion's bucket-serialized merge of the shard
/// substreams — plus DPC's per-shard replica failover — must be
/// deterministic across runtimes.
#[test]
fn sharded_chain_stable_stream_identical_across_runtimes() {
    let o = ShardedChainOptions {
        shards: 2,
        total_rate: 300.0,
        per_node_delay: Duration::from_millis(500),
        work_cost: Duration::from_micros(10),
        light_cost: Duration::from_micros(5),
        seed: 33,
        ..Default::default()
    };
    // Crash replica 0 of shard 1 of the "work" stage (logical fragment 1)
    // at t=1.5s, permanently: the shard's surviving replica must carry its
    // partition while everything else flows undisturbed.
    let crash = FaultSpec::CrashReplica {
        frag: 1,
        shard: 1,
        replica: 0,
        from: Time::from_millis(1500),
        to: None,
    };
    let horizon = Time::from_secs(6);

    let (builder, out) = sharded_chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder.metrics(metrics).fault(crash.clone()).build();
    sim_sys.run_until(horizon);
    let (sim_stable, sim_dups) = sim_sys.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });

    let (builder, out2) = sharded_chain_builder(&o);
    assert_eq!(out, out2, "same diagram, same output stream");
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let layout = builder.metrics(metrics).fault(crash).layout();
    assert!(
        !layout.partitions.is_empty(),
        "shard replicas carry partition filters"
    );
    let threads = deploy_threads(layout);
    threads.run_for(std::time::Duration::from_millis(4500));
    let (thr_stable, thr_dups) = threads.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace enabled")),
            m.dup_stable,
        )
    });
    let drops = threads.shutdown();

    assert_eq!(sim_dups, 0, "simulator run violated stable-id monotonicity");
    assert_eq!(thr_dups, 0, "thread run violated stable-id monotonicity");
    assert!(
        drops.send_unreachable_drops + drops.delivery_drops > 0,
        "the scripted shard crash must actually sever traffic: {drops:?}"
    );
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 300,
        "both runs must deliver a substantial stable stream: sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(
        sim_stable[..common],
        thr_stable[..common],
        "sharded stable streams diverge within the common prefix"
    );
}

/// Healthy-path equivalence at higher rate and no faults: sanity-checks
/// that wall-clock jitter alone (no failure handling involved) cannot
/// reorder or drop stable output.
#[test]
fn healthy_chain_stable_stream_identical_across_runtimes() {
    let o = ChainOptions {
        seed: 9,
        ..fast_chain()
    };

    let (builder, out) = chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sim_sys = builder.metrics(metrics).build();
    sim_sys.run_until(Time::from_secs(4));
    let sim_stable = sim_sys
        .metrics
        .with(out, |m| stable_stream(m.trace.as_ref().unwrap()));

    let (builder, _) = chain_builder(&o);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let threads = deploy_threads(builder.metrics(metrics).layout());
    threads.run_for(std::time::Duration::from_millis(3000));
    let thr_stable = threads
        .metrics
        .with(out, |m| stable_stream(m.trace.as_ref().unwrap()));
    let drops = threads.shutdown();

    assert_eq!(drops.total_drops(), 0, "healthy run loses nothing");
    let common = sim_stable.len().min(thr_stable.len());
    assert!(
        common >= 250,
        "sim={} threads={}",
        sim_stable.len(),
        thr_stable.len()
    );
    assert_eq!(sim_stable[..common], thr_stable[..common]);
}
