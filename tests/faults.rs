//! Failure-injection edge cases beyond the paper's scripted experiments:
//! partitions, back-to-back failures, combined fault types, total crashes.

use borealis::prelude::*;

fn merge3(seed: u64, replication: usize) -> (RunningSystem, StreamId) {
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let s3 = q.source("s3");
    let u = q.union("merged", &[s1, s2, s3]);
    q.output(u);
    let d = q.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(2),
        ..DpcConfig::default()
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(replication), &cfg).unwrap();
    let mut builder = SystemBuilder::new(seed, Duration::from_millis(1))
        .plan(p)
        .client_streams(vec![u.id()]);
    for s in [s1, s2, s3] {
        builder = builder.source(SourceConfig::seq(s.id(), 100.0));
    }
    (builder.build(), u.id())
}

/// Back-to-back failures with a short gap: the second failure begins while
/// the system may still be stabilizing the first (Fig. 11(b) generalized).
#[test]
fn back_to_back_failures_converge() {
    let (mut sys, out) = merge3(41, 2);
    sys.disconnect_source(StreamId(2), 0, Time::from_secs(6), Time::from_secs(10));
    sys.disconnect_source(StreamId(2), 0, Time::from_secs(11), Time::from_secs(15));
    sys.disconnect_source(StreamId(1), 0, Time::from_secs(12), Time::from_secs(16));
    sys.run_until(Time::from_secs(45));
    sys.metrics.with(out, |m| {
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_rec_done >= 1);
        assert!(m.n_stable > 10000, "stream converges: {}", m.n_stable);
        assert!(
            m.max_gap < Duration::from_millis(2600),
            "availability held: {}",
            m.max_gap
        );
    });
}

/// Boundary-mute and full disconnection combined on different streams.
#[test]
fn mixed_fault_types_converge() {
    let (mut sys, out) = merge3(43, 2);
    sys.mute_boundaries(StreamId(0), Time::from_secs(6), Time::from_secs(12));
    sys.disconnect_source(StreamId(2), 0, Time::from_secs(8), Time::from_secs(14));
    sys.run_until(Time::from_secs(40));
    sys.metrics.with(out, |m| {
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_tentative > 0);
        assert!(m.n_rec_done >= 1);
    });
}

/// Crash of BOTH replicas (the paper's §2.2: with persistently logged
/// sources, DPC "can cope with the crash failure of all processing
/// nodes"). During the outage clients get nothing; after restart, nodes
/// rebuild from the source logs and the stream resumes without duplicates.
#[test]
fn total_crash_recovers_from_source_logs() {
    let (mut sys, out) = merge3(47, 2);
    sys.crash_node(0, 0, Time::from_secs(8), Some(Time::from_secs(12)));
    sys.crash_node(0, 1, Time::from_secs(8), Some(Time::from_secs(12)));
    sys.run_until(Time::from_secs(40));
    sys.metrics.with(out, |m| {
        assert_eq!(m.dup_stable, 0, "deterministic rebuild reuses the same ids");
        assert!(
            m.n_stable > 8000,
            "stream must resume after total crash: {}",
            m.n_stable
        );
    });
}

/// A network partition separating ONE replica from all sources: that
/// replica detects the silence via missed keep-alives (Fig. 5) and
/// advertises UP_FAILURE without ever producing tentative data; the client
/// switches to the healthy replica within the keep-alive bound.
#[test]
fn partitioned_replica_client_switches_fast() {
    use borealis::sim::FaultEvent;
    let (mut sys, out) = merge3(53, 2);
    let victim = sys.fragment_replicas[0][0];
    for stream in [StreamId(0), StreamId(1), StreamId(2)] {
        let src = sys.source_of(stream);
        sys.sim.schedule_fault(
            Time::from_secs(8),
            FaultEvent::LinkDown { a: src, b: victim },
        );
        sys.sim.schedule_fault(
            Time::from_secs(14),
            FaultEvent::LinkUp { a: src, b: victim },
        );
    }
    sys.run_until(Time::from_secs(40));
    sys.metrics.with(out, |m| {
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_stable > 9000);
        // The healthy replica serves throughout: the only gap is the
        // detection + switch window, far below the 2 s budget.
        assert!(m.max_gap < Duration::from_millis(1500), "gap {}", m.max_gap);
    });
}

/// A total input blackout (every source unreachable from every replica):
/// no availability guarantee exists — "as long as some path of non-blocking
/// operators is available" (Property 1) — but the system must deliver the
/// complete stream after the heal, without duplicates or tentative data
/// (nothing was processed from partial inputs).
#[test]
fn total_blackout_recovers_completely() {
    let (mut sys, out) = merge3(57, 2);
    for stream in [StreamId(0), StreamId(1), StreamId(2)] {
        sys.disconnect_source(stream, 0, Time::from_secs(8), Time::from_secs(14));
    }
    sys.run_until(Time::from_secs(40));
    sys.metrics.with(out, |m| {
        assert_eq!(m.dup_stable, 0);
        // The blackout gap itself is expected; afterwards the backlog is
        // delivered stably and completely.
        assert!(m.n_stable > 10000, "complete delivery: {}", m.n_stable);
    });
}

/// Bounded output buffers (§8.1 convergent-capable mode): the system keeps
/// running with eviction; late subscribers may miss evicted history but
/// the live stream stays consistent.
#[test]
fn bounded_buffers_keep_live_stream_consistent() {
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let u = q.union("merged", &[s1, s2]);
    q.output(u);
    let d = q.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(2),
        ..DpcConfig::default()
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(2), &cfg).unwrap();
    let (s2, u) = (s2.id(), u.id());
    let mut sys = SystemBuilder::new(59, Duration::from_millis(1))
        .source(SourceConfig::seq(s1.id(), 100.0))
        .source(SourceConfig::seq(s2, 100.0))
        .plan(p)
        .client_streams(vec![u])
        .node_tuning(NodeTuning {
            buffer_policy: BufferPolicy::DropOldest(2_000),
            ..NodeTuning::default()
        })
        .build();
    sys.disconnect_source(s2, 0, Time::from_secs(6), Time::from_secs(10));
    sys.run_until(Time::from_secs(30));
    sys.metrics.with(u, |m| {
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_stable > 4000);
        assert!(m.n_rec_done >= 1);
    });
}

/// Flapping link: many short failures in sequence must not wedge the
/// protocol or leak inconsistency.
#[test]
fn flapping_link_does_not_wedge() {
    let (mut sys, out) = merge3(61, 2);
    for k in 0..5u64 {
        let start = Time::from_secs(6 + 4 * k);
        sys.disconnect_source(StreamId(2), 0, start, start + Duration::from_millis(1500));
    }
    sys.run_until(Time::from_secs(50));
    sys.metrics.with(out, |m| {
        assert_eq!(m.dup_stable, 0);
        assert!(
            m.n_stable > 12000,
            "stream survives flapping: {}",
            m.n_stable
        );
    });
}
