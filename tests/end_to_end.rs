//! End-to-end integration tests spanning all crates: the paper's core
//! guarantees checked on full simulated deployments.

use borealis::prelude::*;
use borealis_dpc::TraceEntry;

/// Builds the standard three-source → union → output system.
fn merge3(
    seed: u64,
    replication: usize,
    delay_secs: f64,
    trace: bool,
) -> (RunningSystem, StreamId) {
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let s3 = q.source("s3");
    let u = q.union("merged", &[s1, s2, s3]);
    q.output(u);
    let d = q.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs_f64(delay_secs),
        ..DpcConfig::default()
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(replication), &cfg).unwrap();
    let hub = MetricsHub::new();
    if trace {
        hub.enable_trace(u.id());
    }
    let mut builder = SystemBuilder::new(seed, Duration::from_millis(1))
        .plan(p)
        .client_streams(vec![u.id()])
        .metrics(hub);
    for s in [s1, s2, s3] {
        builder = builder.source(SourceConfig::seq(s.id(), 100.0));
    }
    (builder.build(), u.id())
}

/// Applies the DPC stream semantics to a client trace: UNDO rolls back the
/// tentative suffix, corrections replace it. Returns the final stream the
/// application retains, as (id, stime, kind) triples.
fn final_stream(trace: &[TraceEntry]) -> Vec<(u64, u64, TupleKind)> {
    let mut result: Vec<(u64, u64, TupleKind)> = Vec::new();
    for e in trace {
        match e.kind {
            TupleKind::Insertion | TupleKind::Tentative => {
                result.push((e.id.0, e.stime.as_micros(), e.kind));
            }
            TupleKind::Undo => {
                let target = e.undo_target.unwrap_or_default().0;
                // Drop everything after the last stable tuple <= target.
                let keep = result
                    .iter()
                    .rposition(|&(id, _, k)| k == TupleKind::Insertion && id <= target)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                result.truncate(keep);
            }
            TupleKind::RecDone | TupleKind::Boundary => {}
        }
    }
    result
}

/// Definition 1 (eventual consistency), checked literally: after failures
/// heal, the client's final stream equals the failure-free run's stream.
#[test]
fn eventual_consistency_exact_stream_equivalence() {
    let horizon = Time::from_secs(40);
    let (mut clean, out) = merge3(5, 2, 2.0, true);
    clean.run_until(horizon);
    let clean_stream: Vec<_> = clean.metrics.with(out, |m| {
        final_stream(m.trace.as_ref().unwrap())
            .into_iter()
            .filter(|&(_, _, k)| k == TupleKind::Insertion)
            .collect()
    });

    let (mut faulty, out2) = merge3(5, 2, 2.0, true);
    faulty.disconnect_source(StreamId(2), 0, Time::from_secs(8), Time::from_secs(16));
    faulty.run_until(horizon);
    let faulty_stream: Vec<_> = faulty.metrics.with(out2, |m| {
        final_stream(m.trace.as_ref().unwrap())
            .into_iter()
            .filter(|&(_, _, k)| k == TupleKind::Insertion)
            .collect()
    });

    // The shorter run is a prefix of the longer one (the tail may still be
    // in flight at the horizon); everything delivered stably must agree
    // exactly — same ids, same stimes, same order.
    let n = clean_stream.len().min(faulty_stream.len());
    assert!(n > 9000, "substantial stable output expected, got {n}");
    assert_eq!(clean_stream[..n], faulty_stream[..n]);
    let diff = clean_stream.len().abs_diff(faulty_stream.len());
    assert!(diff < 100, "tails diverge by {diff} tuples");
}

/// Property 1 (availability): with a live replica path, new results keep
/// arriving within the incremental bound plus normal processing, at all
/// times — even while one replica reconciles a long failure.
#[test]
fn availability_bound_through_long_failure() {
    let (mut sys, out) = merge3(9, 2, 2.0, false);
    sys.disconnect_source(StreamId(2), 0, Time::from_secs(8), Time::from_secs(38));
    sys.run_until(Time::from_secs(70));
    sys.metrics.with(out, |m| {
        // 1.8 s effective suspend + serialization/dispatch slack.
        assert!(
            m.max_gap < Duration::from_millis(2600),
            "gap {} exceeds the bound",
            m.max_gap
        );
        assert!(m.n_tentative > 0);
        assert_eq!(m.dup_stable, 0);
    });
}

/// A node crash mid-failure: the surviving replica carries the stream, the
/// crashed one recovers from upstream logs (§4.5), and no duplicates or
/// inconsistencies appear.
#[test]
fn crash_during_failure_and_recovery() {
    let (mut sys, out) = merge3(13, 2, 2.0, false);
    sys.disconnect_source(StreamId(2), 0, Time::from_secs(8), Time::from_secs(14));
    sys.crash_node(0, 0, Time::from_secs(10), Some(Time::from_secs(20)));
    sys.run_until(Time::from_secs(45));
    sys.metrics.with(out, |m| {
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_rec_done >= 1);
        assert!(m.n_stable > 8000, "stream must continue: {}", m.n_stable);
    });
}

/// Unreplicated deployments still guarantee eventual consistency (Fig. 11):
/// availability suffers during reconciliation, but all tentative data is
/// corrected and nothing is duplicated.
#[test]
fn single_replica_eventual_consistency() {
    let (mut sys, out) = merge3(17, 1, 2.0, true);
    sys.disconnect_source(StreamId(0), 0, Time::from_secs(8), Time::from_secs(20));
    sys.run_until(Time::from_secs(45));
    sys.metrics.with(out, |m| {
        assert!(m.n_tentative > 0);
        assert!(m.n_undo >= 1);
        assert!(m.n_rec_done >= 1);
        assert_eq!(m.dup_stable, 0);
        let stream = final_stream(m.trace.as_ref().unwrap());
        // After the run, the retained stream must be stable except for the
        // in-flight tail.
        let first_tentative = stream
            .iter()
            .position(|&(_, _, k)| k == TupleKind::Tentative)
            .unwrap_or(stream.len());
        assert!(
            stream.len() - first_tentative < 400,
            "only the tail may remain tentative ({} of {})",
            stream.len() - first_tentative,
            stream.len()
        );
    });
}

/// Overlapping failures on two different input streams (Fig. 11(a)): a
/// single correction wave after the second failure heals; no duplicates.
#[test]
fn overlapping_failures_single_correction_wave() {
    let (mut sys, out) = merge3(21, 1, 2.0, true);
    sys.disconnect_source(StreamId(0), 0, Time::from_secs(8), Time::from_secs(16));
    sys.disconnect_source(StreamId(2), 0, Time::from_secs(12), Time::from_secs(20));
    sys.run_until(Time::from_secs(45));
    sys.metrics.with(out, |m| {
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_rec_done >= 1);
        // The first heal (t=16) must not trigger reconciliation: stream 3
        // is still down. Tentative data spans both failures.
        assert!(m.n_tentative > 0);
    });
}

/// Buffer truncation under acknowledgments (§8.1): with clients acking,
/// output buffers stay bounded during failure-free operation.
#[test]
fn buffers_truncate_under_acks() {
    let (mut sys, out) = merge3(29, 2, 2.0, false);
    sys.run_until(Time::from_secs(30));
    // Indirect check: the run completes with full delivery and no protocol
    // violations. (Buffer sizes are node-internal; the truncation path is
    // unit-tested in borealis-dpc; here we verify it does not corrupt the
    // stream over a long run with periodic acks.)
    sys.metrics.with(out, |m| {
        assert!(m.n_stable > 8500);
        assert_eq!(m.dup_stable, 0);
    });
}

/// Determinism: identical seeds and scripts yield byte-identical outcomes.
#[test]
fn runs_are_deterministic() {
    let run = || {
        let (mut sys, out) = merge3(31, 2, 2.0, false);
        sys.disconnect_source(StreamId(1), 0, Time::from_secs(5), Time::from_secs(9));
        sys.run_until(Time::from_secs(20));
        sys.metrics.with(out, |m| {
            (m.n_stable, m.n_tentative, m.n_undo, m.n_rec_done, m.procnew)
        })
    };
    assert_eq!(run(), run());
}
