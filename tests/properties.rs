//! Property-style tests: DPC's guarantees must hold for *arbitrary* failure
//! schedules, not just the scripted scenarios of the paper's evaluation.
//!
//! The registry-free build has no `proptest`, so cases are generated with
//! the workspace's deterministic seeded RNG: every run explores the same
//! randomized schedules, and a failing case is reproducible from its case
//! index alone.

use borealis::prelude::*;
use borealis_dpc::TraceEntry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomly generated failure episode.
#[derive(Debug, Clone)]
struct Episode {
    stream: u32,
    start_ms: u64,
    duration_ms: u64,
    boundary_only: bool,
}

fn random_episode(rng: &mut StdRng) -> Episode {
    Episode {
        stream: rng.gen_range(0u32..3),
        start_ms: rng.gen_range(5_000u64..15_000),
        duration_ms: rng.gen_range(500u64..8_000),
        boundary_only: rng.gen_range(0u32..2) == 1,
    }
}

fn build_system(seed: u64, trace: bool) -> (RunningSystem, StreamId) {
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let s3 = q.source("s3");
    let u = q.union("merged", &[s1, s2, s3]);
    q.output(u);
    let d = q.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(2),
        ..DpcConfig::default()
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(2), &cfg).unwrap();
    let hub = MetricsHub::new();
    if trace {
        hub.enable_trace(u.id());
    }
    let mut builder = SystemBuilder::new(seed, Duration::from_millis(1))
        .plan(p)
        .client_streams(vec![u.id()])
        .metrics(hub);
    for s in [s1, s2, s3] {
        builder = builder.source(SourceConfig::seq(s.id(), 60.0));
    }
    (builder.build(), u.id())
}

/// Extracts the stable stream the client retains after undo application.
fn retained_stable(trace: &[TraceEntry]) -> Vec<(u64, u64)> {
    let mut result: Vec<(u64, u64, bool)> = Vec::new();
    for e in trace {
        match e.kind {
            TupleKind::Insertion => result.push((e.id.0, e.stime.as_micros(), true)),
            TupleKind::Tentative => result.push((e.id.0, e.stime.as_micros(), false)),
            TupleKind::Undo => {
                let target = e.undo_target.unwrap_or_default().0;
                let keep = result
                    .iter()
                    .rposition(|&(id, _, stable)| stable && id <= target)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                result.truncate(keep);
            }
            _ => {}
        }
    }
    result
        .into_iter()
        .filter(|&(_, _, stable)| stable)
        .map(|(id, st, _)| (id, st))
        .collect()
}

/// For any schedule of 1-3 failure episodes:
/// (a) no duplicate stable tuples ever reach the client,
/// (b) the retained stable stream is a prefix of the failure-free run's
///     stream (Definition 1: same tuples, same order), and
/// (c) stable ids are strictly increasing after undo application.
#[test]
fn dpc_invariants_hold_under_random_failures() {
    let mut rng = StdRng::seed_from_u64(0xD1C);
    for case in 0..12 {
        let n_episodes = rng.gen_range(1usize..4);
        let episodes: Vec<Episode> = (0..n_episodes).map(|_| random_episode(&mut rng)).collect();
        let seed = rng.gen_range(0u64..1000);

        let horizon = Time::from_secs(45);
        let (mut clean, out) = build_system(seed, true);
        clean.run_until(horizon);
        let reference = clean
            .metrics
            .with(out, |m| retained_stable(m.trace.as_ref().unwrap()));

        let (mut sys, out2) = build_system(seed, true);
        for ep in &episodes {
            let start = Time(ep.start_ms * 1000);
            let end = start + Duration::from_millis(ep.duration_ms);
            if ep.boundary_only {
                sys.mute_boundaries(StreamId(ep.stream), start, end);
            } else {
                sys.disconnect_source(StreamId(ep.stream), 0, start, end);
            }
        }
        sys.run_until(horizon);

        sys.metrics.with(out2, |m| {
            // (a) No duplicates.
            assert_eq!(m.dup_stable, 0, "case {case} {episodes:?}");
            let retained = retained_stable(m.trace.as_ref().unwrap());
            // (c) Strictly increasing stable ids.
            assert!(
                retained.windows(2).all(|w| w[0].0 < w[1].0),
                "case {case}: stable ids not increasing"
            );
            // (b) Prefix equivalence with the failure-free run.
            let n = retained.len().min(reference.len());
            assert!(n > 0, "case {case}: no stable output at all");
            assert_eq!(&retained[..n], &reference[..n], "case {case} {episodes:?}");
        });
    }
}

/// Availability: for failures comfortably inside the run, the client keeps
/// receiving new data — the maximum gap stays within the detection delay
/// plus protocol slack, for any single episode.
#[test]
fn availability_holds_for_any_single_failure() {
    let mut rng = StdRng::seed_from_u64(0xA11);
    for case in 0..12 {
        let ep = random_episode(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let (mut sys, out) = build_system(seed, false);
        let start = Time(ep.start_ms * 1000);
        let end = start + Duration::from_millis(ep.duration_ms);
        if ep.boundary_only {
            sys.mute_boundaries(StreamId(ep.stream), start, end);
        } else {
            sys.disconnect_source(StreamId(ep.stream), 0, start, end);
        }
        sys.run_until(Time::from_secs(45));
        sys.metrics.with(out, |m| {
            assert!(
                m.max_gap < Duration::from_millis(2900),
                "case {case}: gap {} exceeds bound for {:?}",
                m.max_gap,
                ep
            );
        });
    }
}

/// Batch-native equivalence: for arbitrary mixed streams (stable,
/// tentative, boundaries, undo, rec-done) delivered in arbitrary batch
/// sizes on arbitrary ports, the SUnion's batch ingestion path produces
/// byte-identical output sequences, signals, and replay logs to
/// tuple-at-a-time ingestion. This is the safety net under the zero-copy
/// serialization hot path: batching is an optimization, never a semantic.
#[test]
fn sunion_batch_and_per_tuple_paths_are_equivalent() {
    use borealis::ops::{BatchEmitter, Operator, SUnion};

    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for case in 0..40 {
        // A random mixed-kind stream, pre-split into random chunks, each
        // chunk assigned an input port and an arrival time.
        let n = rng.gen_range(1usize..120);
        let mut next_id = 1u64;
        let tuples: Vec<Tuple> = (0..n)
            .map(|_| {
                let roll = rng.gen_range(0u32..100);
                let stime = Time::from_millis(rng.gen_range(0u64..1_000));
                if roll < 70 {
                    let t =
                        Tuple::insertion(TupleId(next_id), stime, vec![Value::Int(next_id as i64)]);
                    next_id += 1;
                    t
                } else if roll < 85 {
                    let t =
                        Tuple::tentative(TupleId(next_id), stime, vec![Value::Int(next_id as i64)]);
                    next_id += 1;
                    t
                } else if roll < 95 {
                    Tuple::boundary(TupleId::NONE, stime)
                } else if roll < 98 {
                    Tuple::undo(TupleId::NONE, TupleId::NONE)
                } else {
                    Tuple::rec_done(TupleId::NONE, stime)
                }
            })
            .collect();
        let mut chunks: Vec<(usize, Time, TupleBatch)> = Vec::new();
        {
            let whole = TupleBatch::from_vec(tuples);
            let mut start = 0;
            let mut arrival_ms = 1u64;
            while start < whole.len() {
                let len = 1 + rng.gen_range(0usize..(whole.len() - start).min(17));
                chunks.push((
                    rng.gen_range(0usize..2),
                    Time::from_millis(arrival_ms),
                    whole.slice(start..start + len),
                ));
                start += len;
                arrival_ms += rng.gen_range(0u64..5);
            }
        }

        let mut cfg = SUnionConfig::new(2);
        cfg.bucket = Duration::from_millis(100);
        cfg.is_input = true;
        let run = |batched: bool| {
            let mut s = SUnion::new(cfg.clone());
            s.set_recording(true);
            let mut out = BatchEmitter::new();
            for (port, at, chunk) in &chunks {
                if batched {
                    s.process_batch(*port, chunk, *at, &mut out);
                } else {
                    for t in chunk.as_slice() {
                        s.process(*port, t, *at, &mut out);
                    }
                }
            }
            // Flush whatever the availability path would still release.
            s.tick(Time::from_secs(100), true, &mut out);
            let log: Vec<(Time, usize, Tuple)> = s
                .take_replay_log()
                .into_iter()
                .flat_map(|(t, p, b)| {
                    b.as_slice()
                        .iter()
                        .cloned()
                        .map(move |tu| (t, p, tu))
                        .collect::<Vec<_>>()
                })
                .collect();
            (out.take_tuples(), log)
        };

        let per_tuple = run(false);
        let batched = run(true);
        assert_eq!(
            per_tuple.0, batched.0,
            "case {case}: emitted output/signals diverge between paths"
        );
        assert_eq!(
            per_tuple.1, batched.1,
            "case {case}: replay logs diverge between paths"
        );
    }
}

/// Copy-on-write snapshot soundness: for random inputs and a random
/// checkpoint position, mutating an operator after its checkpoint (forcing
/// the CoW divergence) and then restoring must reproduce exactly the
/// outputs of a run that never diverged — for both the SUnion buffering
/// state and the Aggregate window state.
#[test]
fn cow_checkpoint_restore_round_trips_under_divergence() {
    use borealis::ops::{AggFn, Aggregate, AggregateSpec, BatchEmitter, Operator, SUnion};

    let mut rng = StdRng::seed_from_u64(0xC0_57);
    for case in 0..25 {
        let mk = |rng: &mut StdRng, id: u64| {
            Tuple::insertion(
                TupleId(id),
                Time::from_millis(rng.gen_range(0u64..2_000)),
                vec![Value::Int(rng.gen_range(-5i64..5))],
            )
        };
        let prefix: Vec<Tuple> = (0..rng.gen_range(1u64..40))
            .map(|i| mk(&mut rng, i + 1))
            .collect();
        let junk: Vec<Tuple> = (0..rng.gen_range(1u64..40))
            .map(|i| mk(&mut rng, 100 + i))
            .collect();
        let suffix: Vec<Tuple> = (0..rng.gen_range(1u64..40))
            .map(|i| mk(&mut rng, 200 + i))
            .collect();
        let close = Tuple::boundary(TupleId::NONE, Time::from_secs(10));

        let mut ops: Vec<Box<dyn Operator>> = vec![
            Box::new(SUnion::new({
                let mut c = SUnionConfig::new(1);
                c.is_input = true;
                c
            })),
            Box::new(Aggregate::new(AggregateSpec {
                window: Duration::from_millis(100),
                slide: Duration::from_millis(100),
                group_by: vec![],
                aggs: vec![AggFn::count(), AggFn::sum(Expr::field(0))],
            })),
        ];
        for op in &mut ops {
            let feed = |op: &mut Box<dyn Operator>, tuples: &[Tuple], out: &mut BatchEmitter| {
                for t in tuples {
                    op.process(0, t, Time::from_millis(1), out);
                }
            };
            // Continuous reference run: prefix, then suffix + close.
            let mut sink = BatchEmitter::new();
            feed(op, &prefix, &mut sink);
            let mut reference = BatchEmitter::new();
            feed(op, &suffix, &mut reference);
            op.process(0, &close, Time::from_millis(1), &mut reference);

            // Diverged run on a fresh twin: prefix, checkpoint, junk
            // (mutates the CoW state), restore, then the same suffix.
            let mut twin: Box<dyn Operator> = match op.name() {
                "sunion" => Box::new(SUnion::new({
                    let mut c = SUnionConfig::new(1);
                    c.is_input = true;
                    c
                })),
                _ => Box::new(Aggregate::new(AggregateSpec {
                    window: Duration::from_millis(100),
                    slide: Duration::from_millis(100),
                    group_by: vec![],
                    aggs: vec![AggFn::count(), AggFn::sum(Expr::field(0))],
                })),
            };
            let mut sink = BatchEmitter::new();
            feed(&mut twin, &prefix, &mut sink);
            let snap = twin.checkpoint();
            feed(&mut twin, &junk, &mut sink);
            twin.process(0, &close, Time::from_millis(1), &mut sink);
            twin.restore(&snap);
            let mut replayed = BatchEmitter::new();
            feed(&mut twin, &suffix, &mut replayed);
            twin.process(0, &close, Time::from_millis(1), &mut replayed);

            assert_eq!(
                reference.take_tuples(),
                replayed.take_tuples(),
                "case {case}: {} diverged after checkpoint/restore",
                op.name()
            );
        }
    }
}

/// Deterministic serialization: feeding the same tuples in arbitrary
/// per-stream interleavings produces identical SUnion output order — the
/// §4.2 replica-consistency guarantee at the operator level.
#[test]
fn sunion_total_order_is_interleaving_invariant() {
    use borealis::ops::{BatchEmitter, Operator, SUnion};

    let mut rng = StdRng::seed_from_u64(0x50_u64);
    for _ in 0..50 {
        // Random per-stream tuples with random stimes inside one bucket
        // span, delivered in two different interleavings.
        let n = rng.gen_range(1usize..40);
        let items: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.gen_range(0usize..3), rng.gen_range(0u64..400)))
            .collect();

        let run = |order: &[(usize, u64)]| {
            let mut cfg = SUnionConfig::new(3);
            cfg.bucket = Duration::from_millis(100);
            cfg.is_input = true;
            let mut s = SUnion::new(cfg);
            let mut out = BatchEmitter::new();
            let mut ids = [1u64; 3];
            for &(port, stime_ms) in order {
                let t = Tuple::insertion(
                    TupleId(ids[port]),
                    Time::from_millis(stime_ms),
                    vec![Value::Int(stime_ms as i64)],
                );
                ids[port] += 1;
                s.process(port, &t, Time::from_millis(1), &mut out);
            }
            for port in 0..3 {
                let b = Tuple::boundary(TupleId::NONE, Time::from_millis(500));
                s.process(port, &b, Time::from_millis(2), &mut out);
            }
            out.tuples()
                .iter()
                .filter(|t| t.is_data())
                .map(|t| (t.stime.as_micros(), t.origin, t.values.clone()))
                .collect::<Vec<_>>()
        };

        // Original order vs per-port-stable shuffled order (port-major).
        let mut shuffled = items.clone();
        shuffled.sort_by_key(|&(port, _)| port); // stable: per-port order kept
        assert_eq!(
            run(&items),
            run(&shuffled),
            "interleaving changed the order"
        );
    }
}

/// Credit-based backpressure is delay, never semantics: for arbitrary
/// per-port batch scripts delivered through credit-gated links with random
/// windows ≥ 1 (random consumption interleavings across ports, FIFO per
/// port — exactly what the transport guarantees), the batch-native SUnion
/// emits byte-identical stable output to the ungated run. Backpressure may
/// delay buckets; it must never reorder or drop stable data.
#[test]
fn credit_gated_sunion_output_identical_to_unbounded() {
    use borealis::ops::Operator;
    use borealis::sim::FlowControl;
    use std::collections::VecDeque;

    let mut rng = StdRng::seed_from_u64(0xF10);
    for case in 0..20 {
        let n_ports = rng.gen_range(1usize..4);
        // Per-port scripts of batches respecting the §4.2.1 punctuation
        // contract: a boundary follows all of its port's data with smaller
        // or equal stimes; later data is strictly newer.
        let mut scripts: Vec<Vec<TupleBatch>> = Vec::new();
        for port in 0..n_ports {
            let mut batches = Vec::new();
            let mut frontier_ms = 0u64;
            let mut next_id = 1u64;
            let n_batches = rng.gen_range(4u32..12);
            for _ in 0..n_batches {
                if rng.gen_range(0u32..4) == 0 {
                    // Boundary batch: covers everything emitted so far.
                    frontier_ms += rng.gen_range(50..400);
                    batches.push(TupleBatch::single(Tuple::boundary(
                        TupleId::NONE,
                        Time::from_millis(frontier_ms),
                    )));
                } else {
                    let n = rng.gen_range(1usize..6);
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        let stime = frontier_ms + 1 + rng.gen_range(0..300);
                        v.push(Tuple::insertion(
                            TupleId(next_id),
                            Time::from_millis(stime),
                            vec![Value::Int((port as i64) << 32 | next_id as i64)],
                        ));
                        next_id += 1;
                    }
                    batches.push(TupleBatch::from_vec(v));
                }
            }
            // Closing boundary so every bucket stabilizes.
            batches.push(TupleBatch::single(Tuple::boundary(
                TupleId::NONE,
                Time::from_millis(10_000),
            )));
            scripts.push(batches);
        }

        let mk_sunion = || {
            let mut c = SUnionConfig::new(n_ports);
            c.detect_delay = Duration::from_secs(3600); // never tentative
            c.delay_budget = Duration::from_secs(3600);
            c.is_input = true;
            borealis::ops::SUnion::new(c)
        };
        let data_of = |tuples: Vec<Tuple>| {
            tuples
                .into_iter()
                .filter(|t| t.is_data())
                .map(|t| (t.kind, t.id, t.stime, t.origin, t.values))
                .collect::<Vec<_>>()
        };

        // --- Ungated reference: round-robin delivery in script order -----
        let reference = {
            let mut s = mk_sunion();
            let mut out = borealis::ops::BatchEmitter::new();
            let mut cursors = vec![0usize; n_ports];
            let mut step = 0u64;
            loop {
                let mut progressed = false;
                for port in 0..n_ports {
                    if cursors[port] < scripts[port].len() {
                        s.process_batch(
                            port,
                            &scripts[port][cursors[port]],
                            Time::from_millis(step),
                            &mut out,
                        );
                        cursors[port] += 1;
                        step += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            data_of(out.take_tuples().0)
        };

        // --- Credit-gated run: random windows, random interleaving -------
        let gated = {
            let window = rng.gen_range(1u32..5);
            let mut flow: FlowControl<(usize, TupleBatch)> =
                FlowControl::new(CreditPolicy::Window(window));
            let sink = NodeId(99);
            let mut s = mk_sunion();
            let mut out = borealis::ops::BatchEmitter::new();
            let mut cursors = vec![0usize; n_ports];
            // Delivered-but-unprocessed, FIFO per port (the transport's
            // per-link ordering guarantee).
            let mut mailbox: Vec<VecDeque<TupleBatch>> = vec![VecDeque::new(); n_ports];
            let mut step = 0u64;
            loop {
                let deliverable: Vec<usize> =
                    (0..n_ports).filter(|&p| !mailbox[p].is_empty()).collect();
                let sendable: Vec<usize> = (0..n_ports)
                    .filter(|&p| cursors[p] < scripts[p].len())
                    .collect();
                if deliverable.is_empty() && sendable.is_empty() {
                    break;
                }
                let process =
                    !deliverable.is_empty() && (sendable.is_empty() || rng.gen_range(0u32..2) == 0);
                if process {
                    let p = deliverable[rng.gen_range(0..deliverable.len() as u64) as usize];
                    let batch = mailbox[p].pop_front().expect("deliverable port");
                    s.process_batch(p, &batch, Time::from_millis(step), &mut out);
                    step += 1;
                    // Consumption returns the credit; the link releases the
                    // next queued batch in FIFO order.
                    if let Some((port, released)) =
                        flow.replenish(NodeId(p as u32), sink, Time::from_millis(step))
                    {
                        assert_eq!(port, p, "links must not cross");
                        mailbox[p].push_back(released);
                    }
                } else {
                    let p = sendable[rng.gen_range(0..sendable.len() as u64) as usize];
                    let batch = scripts[p][cursors[p]].clone();
                    cursors[p] += 1;
                    if let Some((port, admitted)) =
                        flow.admit(NodeId(p as u32), sink, (p, batch), Time::from_millis(step))
                    {
                        assert_eq!(port, p);
                        mailbox[p].push_back(admitted);
                    }
                }
            }
            assert_eq!(flow.gauges().queued_now, 0, "everything drained");
            data_of(out.take_tuples().0)
        };

        assert_eq!(
            reference, gated,
            "case {case}: credit gating changed the stable output"
        );
        assert!(
            reference.iter().all(|(k, ..)| *k == TupleKind::Insertion),
            "case {case}: nothing tentative in a stall-free stable run"
        );
    }
}

/// One-pass partitioner equivalence: for random mixed batches (data +
/// control tuples), random key expressions (including ones that fail to
/// evaluate), and random shard counts, the shared selection views produced
/// by a single `ShardRouter::route` pass are byte-identical to what each
/// receiver link would have materialized with `PartitionSpec::filter_batch`.
/// Data tuples land on exactly one shard (total and disjoint); control
/// tuples reach every shard; and replica links (same spec routed again)
/// observe the very same view.
#[test]
fn shard_views_match_per_link_filter_batch() {
    use borealis::types::{BatchView, ShardRouter};

    let mut rng = StdRng::seed_from_u64(0x5AAD);
    for case in 0..60 {
        // A random mixed-kind batch: two value fields so a key on field 2
        // exercises the eval-failure -> shard 0 fallback.
        let n = rng.gen_range(0usize..150);
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| {
                let id = TupleId(i as u64 + 1);
                let stime = Time::from_millis(rng.gen_range(0u64..1_000));
                match rng.gen_range(0u32..10) {
                    0 => Tuple::boundary(TupleId::NONE, stime),
                    1 => Tuple::undo(TupleId::NONE, id),
                    2 => Tuple::tentative(
                        id,
                        stime,
                        vec![
                            Value::Int(rng.gen_range(-1000i64..1000)),
                            Value::Str(format!("g{}", rng.gen_range(0u32..5)).into()),
                        ],
                    ),
                    _ => Tuple::insertion(
                        id,
                        stime,
                        vec![
                            Value::Int(rng.gen_range(-1000i64..1000)),
                            Value::Str(format!("g{}", rng.gen_range(0u32..5)).into()),
                        ],
                    ),
                }
            })
            .collect();
        let batch = TupleBatch::from_vec(tuples);
        // Sometimes route a zero-copy sub-slice to cover non-whole views.
        let input: BatchView = if batch.len() > 2 && rng.gen_range(0u32..3) == 0 {
            let start = rng.gen_range(0usize..batch.len() / 2);
            let end = rng.gen_range(start + 1..batch.len() + 1);
            batch.slice(start..end).into()
        } else {
            batch.clone().into()
        };
        let key = Expr::field(rng.gen_range(0usize..3)); // field 2 never evals
        let k = [1u32, 2, 3, 4, 8][rng.gen_range(0usize..5)];

        let reference = input.to_batch();
        let mut router = ShardRouter::new();
        let mut data_seen = 0usize;
        for shard in 0..k {
            let spec = PartitionSpec {
                key: key.clone(),
                shards: k,
                index: shard,
            };
            let view = router.route(&spec, &input);
            let expect = spec.filter_batch(&reference);
            assert_eq!(
                view.to_batch().as_slice(),
                expect.as_slice(),
                "case {case}: shard {shard}/{k} diverges from filter_batch"
            );
            // A replica link routing the same spec sees the same view.
            let replica = router.route(&spec, &input);
            assert_eq!(view, replica, "case {case}: replica view differs");
            data_seen += view.iter().filter(|t| t.is_data()).count();
            assert_eq!(
                view.iter().filter(|t| !t.is_data()).count(),
                reference.as_slice().iter().filter(|t| !t.is_data()).count(),
                "case {case}: control tuples must reach every shard"
            );
        }
        // Total and disjoint: every data tuple on exactly one shard.
        assert_eq!(
            data_seen,
            reference.as_slice().iter().filter(|t| t.is_data()).count(),
            "case {case}: data tuples must land on exactly one shard"
        );
    }
}

/// Per-sender-link FIFO under the pooled scheduler: for worker counts 1, 2,
/// and 8 and randomized send cadences (each seed yields a different steal /
/// activation interleaving), every consumer observes each producer's
/// messages in send order, with nothing lost or duplicated. This is the
/// ordering contract the DPC layer builds on — stealing an actor between
/// workers must never reorder a link.
#[test]
fn pooled_scheduler_preserves_per_sender_fifo() {
    use borealis::dpc::{DpcActor, NetMsg, RuntimeCtx};
    use std::sync::{Arc, Mutex};

    const PRODUCERS: usize = 6;
    const PER_PRODUCER: u64 = 150;

    /// Sends `PER_PRODUCER` sequence-numbered messages to the consumer in
    /// randomized bursts at randomized cadence.
    struct Producer {
        consumer: NodeId,
        next: u64,
    }
    impl DpcActor for Producer {
        fn on_start(&mut self, ctx: &mut dyn RuntimeCtx) {
            ctx.set_timer(ctx.now(), 1);
        }
        fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, _from: NodeId, _msg: NetMsg) {}
        fn on_timer(&mut self, ctx: &mut dyn RuntimeCtx, _kind: u64) {
            let burst = 1 + ctx.rand_range(4);
            for _ in 0..burst {
                if self.next == PER_PRODUCER {
                    return;
                }
                let seq = self.next;
                self.next += 1;
                ctx.send(
                    self.consumer,
                    NetMsg::Ack {
                        stream: StreamId(0),
                        through: TupleId(seq),
                    },
                );
            }
            let wait = Duration::from_micros(100 + ctx.rand_range(900));
            ctx.set_timer(ctx.now() + wait, 1);
        }
    }

    /// Records every (sender, sequence) arrival.
    struct Consumer {
        seen: Arc<Mutex<Vec<(NodeId, u64)>>>,
    }
    impl DpcActor for Consumer {
        fn on_message(&mut self, _ctx: &mut dyn RuntimeCtx, from: NodeId, msg: NetMsg) {
            if let NetMsg::Ack { through, .. } = msg {
                self.seen.lock().unwrap().push((from, through.0));
            }
        }
        fn on_timer(&mut self, _ctx: &mut dyn RuntimeCtx, _kind: u64) {}
    }

    for workers in [1usize, 2, 8] {
        for seed in [0xF1F0u64, 0xF1F1, 0xF1F2] {
            let seen = Arc::new(Mutex::new(Vec::new()));
            let consumer = NodeId(PRODUCERS as u32);
            let mut actors: Vec<Box<dyn DpcActor>> = (0..PRODUCERS)
                .map(|_| Box::new(Producer { consumer, next: 0 }) as Box<dyn DpcActor>)
                .collect();
            actors.push(Box::new(Consumer { seen: seen.clone() }));
            let rt = ThreadRuntime::spawn_pooled(
                actors,
                vec![],
                seed,
                vec![],
                CreditPolicy::Unbounded,
                workers,
            );
            let expected = PRODUCERS as u64 * PER_PRODUCER;
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            while (seen.lock().unwrap().len() as u64) < expected {
                assert!(
                    std::time::Instant::now() < deadline,
                    "workers={workers} seed={seed:#x}: timed out at {}/{expected}",
                    seen.lock().unwrap().len()
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            rt.shutdown();

            let seen = seen.lock().unwrap();
            assert_eq!(seen.len() as u64, expected, "nothing lost or duplicated");
            let mut next = [0u64; PRODUCERS];
            for &(from, seq) in seen.iter() {
                let p = from.0 as usize;
                assert_eq!(
                    seq, next[p],
                    "workers={workers} seed={seed:#x}: producer {p} reordered"
                );
                next[p] += 1;
            }
            assert!(next.iter().all(|&n| n == PER_PRODUCER));
        }
    }
}
