//! Property-style tests: DPC's guarantees must hold for *arbitrary* failure
//! schedules, not just the scripted scenarios of the paper's evaluation.
//!
//! The registry-free build has no `proptest`, so cases are generated with
//! the workspace's deterministic seeded RNG: every run explores the same
//! randomized schedules, and a failing case is reproducible from its case
//! index alone.

use borealis::prelude::*;
use borealis_dpc::TraceEntry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomly generated failure episode.
#[derive(Debug, Clone)]
struct Episode {
    stream: u32,
    start_ms: u64,
    duration_ms: u64,
    boundary_only: bool,
}

fn random_episode(rng: &mut StdRng) -> Episode {
    Episode {
        stream: rng.gen_range(0u32..3),
        start_ms: rng.gen_range(5_000u64..15_000),
        duration_ms: rng.gen_range(500u64..8_000),
        boundary_only: rng.gen_range(0u32..2) == 1,
    }
}

fn build_system(seed: u64, trace: bool) -> (RunningSystem, StreamId) {
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let s3 = q.source("s3");
    let u = q.union("merged", &[s1, s2, s3]);
    q.output(u);
    let d = q.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(2),
        ..DpcConfig::default()
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(2), &cfg).unwrap();
    let hub = MetricsHub::new();
    if trace {
        hub.enable_trace(u.id());
    }
    let mut builder = SystemBuilder::new(seed, Duration::from_millis(1))
        .plan(p)
        .client_streams(vec![u.id()])
        .metrics(hub);
    for s in [s1, s2, s3] {
        builder = builder.source(SourceConfig::seq(s.id(), 60.0));
    }
    (builder.build(), u.id())
}

/// Extracts the stable stream the client retains after undo application.
fn retained_stable(trace: &[TraceEntry]) -> Vec<(u64, u64)> {
    let mut result: Vec<(u64, u64, bool)> = Vec::new();
    for e in trace {
        match e.kind {
            TupleKind::Insertion => result.push((e.id.0, e.stime.as_micros(), true)),
            TupleKind::Tentative => result.push((e.id.0, e.stime.as_micros(), false)),
            TupleKind::Undo => {
                let target = e.undo_target.unwrap_or_default().0;
                let keep = result
                    .iter()
                    .rposition(|&(id, _, stable)| stable && id <= target)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                result.truncate(keep);
            }
            _ => {}
        }
    }
    result
        .into_iter()
        .filter(|&(_, _, stable)| stable)
        .map(|(id, st, _)| (id, st))
        .collect()
}

/// For any schedule of 1-3 failure episodes:
/// (a) no duplicate stable tuples ever reach the client,
/// (b) the retained stable stream is a prefix of the failure-free run's
///     stream (Definition 1: same tuples, same order), and
/// (c) stable ids are strictly increasing after undo application.
#[test]
fn dpc_invariants_hold_under_random_failures() {
    let mut rng = StdRng::seed_from_u64(0xD1C);
    for case in 0..12 {
        let n_episodes = rng.gen_range(1usize..4);
        let episodes: Vec<Episode> = (0..n_episodes).map(|_| random_episode(&mut rng)).collect();
        let seed = rng.gen_range(0u64..1000);

        let horizon = Time::from_secs(45);
        let (mut clean, out) = build_system(seed, true);
        clean.run_until(horizon);
        let reference = clean
            .metrics
            .with(out, |m| retained_stable(m.trace.as_ref().unwrap()));

        let (mut sys, out2) = build_system(seed, true);
        for ep in &episodes {
            let start = Time(ep.start_ms * 1000);
            let end = start + Duration::from_millis(ep.duration_ms);
            if ep.boundary_only {
                sys.mute_boundaries(StreamId(ep.stream), start, end);
            } else {
                sys.disconnect_source(StreamId(ep.stream), 0, start, end);
            }
        }
        sys.run_until(horizon);

        sys.metrics.with(out2, |m| {
            // (a) No duplicates.
            assert_eq!(m.dup_stable, 0, "case {case} {episodes:?}");
            let retained = retained_stable(m.trace.as_ref().unwrap());
            // (c) Strictly increasing stable ids.
            assert!(
                retained.windows(2).all(|w| w[0].0 < w[1].0),
                "case {case}: stable ids not increasing"
            );
            // (b) Prefix equivalence with the failure-free run.
            let n = retained.len().min(reference.len());
            assert!(n > 0, "case {case}: no stable output at all");
            assert_eq!(&retained[..n], &reference[..n], "case {case} {episodes:?}");
        });
    }
}

/// Availability: for failures comfortably inside the run, the client keeps
/// receiving new data — the maximum gap stays within the detection delay
/// plus protocol slack, for any single episode.
#[test]
fn availability_holds_for_any_single_failure() {
    let mut rng = StdRng::seed_from_u64(0xA11);
    for case in 0..12 {
        let ep = random_episode(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let (mut sys, out) = build_system(seed, false);
        let start = Time(ep.start_ms * 1000);
        let end = start + Duration::from_millis(ep.duration_ms);
        if ep.boundary_only {
            sys.mute_boundaries(StreamId(ep.stream), start, end);
        } else {
            sys.disconnect_source(StreamId(ep.stream), 0, start, end);
        }
        sys.run_until(Time::from_secs(45));
        sys.metrics.with(out, |m| {
            assert!(
                m.max_gap < Duration::from_millis(2900),
                "case {case}: gap {} exceeds bound for {:?}",
                m.max_gap,
                ep
            );
        });
    }
}

/// Deterministic serialization: feeding the same tuples in arbitrary
/// per-stream interleavings produces identical SUnion output order — the
/// §4.2 replica-consistency guarantee at the operator level.
#[test]
fn sunion_total_order_is_interleaving_invariant() {
    use borealis::ops::{BatchEmitter, Operator, SUnion};

    let mut rng = StdRng::seed_from_u64(0x50_u64);
    for _ in 0..50 {
        // Random per-stream tuples with random stimes inside one bucket
        // span, delivered in two different interleavings.
        let n = rng.gen_range(1usize..40);
        let items: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.gen_range(0usize..3), rng.gen_range(0u64..400)))
            .collect();

        let run = |order: &[(usize, u64)]| {
            let mut cfg = SUnionConfig::new(3);
            cfg.bucket = Duration::from_millis(100);
            cfg.is_input = true;
            let mut s = SUnion::new(cfg);
            let mut out = BatchEmitter::new();
            let mut ids = [1u64; 3];
            for &(port, stime_ms) in order {
                let t = Tuple::insertion(
                    TupleId(ids[port]),
                    Time::from_millis(stime_ms),
                    vec![Value::Int(stime_ms as i64)],
                );
                ids[port] += 1;
                s.process(port, &t, Time::from_millis(1), &mut out);
            }
            for port in 0..3 {
                let b = Tuple::boundary(TupleId::NONE, Time::from_millis(500));
                s.process(port, &b, Time::from_millis(2), &mut out);
            }
            out.tuples()
                .iter()
                .filter(|t| t.is_data())
                .map(|t| (t.stime.as_micros(), t.origin, t.values.clone()))
                .collect::<Vec<_>>()
        };

        // Original order vs per-port-stable shuffled order (port-major).
        let mut shuffled = items.clone();
        shuffled.sort_by_key(|&(port, _)| port); // stable: per-port order kept
        assert_eq!(
            run(&items),
            run(&shuffled),
            "interleaving changed the order"
        );
    }
}
