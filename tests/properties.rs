//! Property-based tests: DPC's guarantees must hold for *arbitrary* failure
//! schedules, not just the scripted scenarios of the paper's evaluation.

use borealis::prelude::*;
use borealis_dpc::TraceEntry;
use proptest::prelude::*;

/// A randomly generated failure episode.
#[derive(Debug, Clone)]
struct Episode {
    stream: u32,
    start_ms: u64,
    duration_ms: u64,
    boundary_only: bool,
}

fn episode_strategy() -> impl Strategy<Value = Episode> {
    (0u32..3, 5_000u64..15_000, 500u64..8_000, any::<bool>()).prop_map(
        |(stream, start_ms, duration_ms, boundary_only)| Episode {
            stream,
            start_ms,
            duration_ms,
            boundary_only,
        },
    )
}

fn build_system(seed: u64, trace: bool) -> (RunningSystem, StreamId) {
    let mut b = DiagramBuilder::new();
    let s1 = b.source("s1");
    let s2 = b.source("s2");
    let s3 = b.source("s3");
    let u = b.add("merged", LogicalOp::Union, &[s1, s2, s3]);
    b.output(u);
    let d = b.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(2),
        ..DpcConfig::default()
    };
    let p = borealis::diagram::plan(&d, &Deployment::single(&d), &cfg).unwrap();
    let hub = MetricsHub::new();
    if trace {
        hub.enable_trace(u);
    }
    let mut builder = SystemBuilder::new(seed, Duration::from_millis(1))
        .plan(p)
        .replication(2)
        .client_streams(vec![u])
        .metrics(hub);
    for s in [s1, s2, s3] {
        builder = builder.source(SourceConfig::seq(s, 60.0));
    }
    (builder.build(), u)
}

/// Extracts the stable stream the client retains after undo application.
fn retained_stable(trace: &[TraceEntry]) -> Vec<(u64, u64)> {
    let mut result: Vec<(u64, u64, bool)> = Vec::new();
    for e in trace {
        match e.kind {
            TupleKind::Insertion => result.push((e.id.0, e.stime.as_micros(), true)),
            TupleKind::Tentative => result.push((e.id.0, e.stime.as_micros(), false)),
            TupleKind::Undo => {
                let target = e.undo_target.unwrap_or_default().0;
                let keep = result
                    .iter()
                    .rposition(|&(id, _, stable)| stable && id <= target)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                result.truncate(keep);
            }
            _ => {}
        }
    }
    result
        .into_iter()
        .filter(|&(_, _, stable)| stable)
        .map(|(id, st, _)| (id, st))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// For any schedule of 1-3 failure episodes:
    /// (a) no duplicate stable tuples ever reach the client,
    /// (b) the retained stable stream is a prefix of the failure-free run's
    ///     stream (Definition 1: same tuples, same order), and
    /// (c) stable ids are strictly increasing after undo application.
    #[test]
    fn dpc_invariants_hold_under_random_failures(
        episodes in prop::collection::vec(episode_strategy(), 1..=3),
        seed in 0u64..1000,
    ) {
        let horizon = Time::from_secs(45);
        let (mut clean, out) = build_system(seed, true);
        clean.run_until(horizon);
        let reference = clean.metrics.with(out, |m| retained_stable(m.trace.as_ref().unwrap()));

        let (mut sys, out2) = build_system(seed, true);
        for ep in &episodes {
            let start = Time(ep.start_ms * 1000);
            let end = start + Duration::from_millis(ep.duration_ms);
            if ep.boundary_only {
                sys.mute_boundaries(StreamId(ep.stream), start, end);
            } else {
                sys.disconnect_source(StreamId(ep.stream), 0, start, end);
            }
        }
        sys.run_until(horizon);

        sys.metrics.with(out2, |m| {
            // (a) No duplicates.
            prop_assert_eq!(m.dup_stable, 0);
            let retained = retained_stable(m.trace.as_ref().unwrap());
            // (c) Strictly increasing stable ids.
            prop_assert!(retained.windows(2).all(|w| w[0].0 < w[1].0));
            // (b) Prefix equivalence with the failure-free run.
            let n = retained.len().min(reference.len());
            prop_assert!(n > 0, "no stable output at all");
            prop_assert_eq!(&retained[..n], &reference[..n]);
            Ok(())
        })?;
    }

    /// Availability: for failures comfortably inside the run, the client
    /// keeps receiving new data — the maximum gap stays within the
    /// detection delay plus protocol slack, for any single episode.
    #[test]
    fn availability_holds_for_any_single_failure(
        ep in episode_strategy(),
        seed in 0u64..1000,
    ) {
        let (mut sys, out) = build_system(seed, false);
        let start = Time(ep.start_ms * 1000);
        let end = start + Duration::from_millis(ep.duration_ms);
        if ep.boundary_only {
            sys.mute_boundaries(StreamId(ep.stream), start, end);
        } else {
            sys.disconnect_source(StreamId(ep.stream), 0, start, end);
        }
        sys.run_until(Time::from_secs(45));
        sys.metrics.with(out, |m| {
            prop_assert!(
                m.max_gap < Duration::from_millis(2900),
                "gap {} exceeds bound for {:?}", m.max_gap, ep
            );
            Ok(())
        })?;
    }
}

/// Deterministic serialization: feeding the same tuples in arbitrary
/// per-stream interleavings produces identical SUnion output order — the
/// §4.2 replica-consistency guarantee at the operator level.
#[test]
fn sunion_total_order_is_interleaving_invariant() {
    use borealis::ops::{Emitter, Operator, SUnion};
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;

    let mut runner = TestRunner::default();
    for _ in 0..50 {
        // Random per-stream tuples with random stimes inside one bucket
        // span, delivered in two different interleavings.
        let tuples_strategy = prop::collection::vec((0usize..3, 0u64..400), 1..40);
        let tree = tuples_strategy.new_tree(&mut runner).unwrap();
        let items = tree.current();

        let run = |order: &[(usize, u64)]| {
            let mut cfg = SUnionConfig::new(3);
            cfg.bucket = Duration::from_millis(100);
            cfg.is_input = true;
            let mut s = SUnion::new(cfg);
            let mut out = Emitter::new();
            let mut ids = [1u64; 3];
            for &(port, stime_ms) in order {
                let t = Tuple::insertion(
                    TupleId(ids[port]),
                    Time::from_millis(stime_ms),
                    vec![Value::Int(stime_ms as i64)],
                );
                ids[port] += 1;
                s.process(port, &t, Time::from_millis(1), &mut out);
            }
            for port in 0..3 {
                let b = Tuple::boundary(TupleId::NONE, Time::from_millis(500));
                s.process(port, &b, Time::from_millis(2), &mut out);
            }
            out.tuples
                .iter()
                .filter(|t| t.is_data())
                .map(|t| (t.stime.as_micros(), t.origin, t.values.clone()))
                .collect::<Vec<_>>()
        };

        // Original order vs per-port-stable shuffled order (port-major).
        let mut shuffled = items.clone();
        shuffled.sort_by_key(|&(port, _)| port); // stable: per-port order kept
        assert_eq!(run(&items), run(&shuffled), "interleaving changed the order");
    }
}
