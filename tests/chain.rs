//! Integration tests of distributed (multi-fragment) deployments: the
//! paper's chain dynamics (§6.2, Fig. 17) as assertions.

use borealis::prelude::*;
use borealis_workloads::{chain_system, ChainOptions, DISTRIBUTED_VARIANTS};

/// A chain of three replicated node pairs survives a boundary-mute failure:
/// tentative data flows end-to-end and is corrected through the whole chain
/// (each stage reconciles, Fig. 17's parallel stabilization).
#[test]
fn chain_corrects_through_all_stages() {
    let (mut sys, out) = chain_system(&ChainOptions {
        depth: 3,
        variant: DISTRIBUTED_VARIANTS[1], // Process & Process
        ..Default::default()
    });
    sys.mute_boundaries(StreamId(2), Time::from_secs(10), Time::from_secs(18));
    sys.run_until(Time::from_secs(50));
    sys.metrics.with(out, |m| {
        assert!(m.n_tentative > 0, "failure must propagate down the chain");
        assert!(m.n_rec_done >= 1, "corrections must reach the client");
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_stable > 12000, "stable stream restored: {}", m.n_stable);
    });
}

/// §6.2's headline: in a chain, Process & Process keeps end-to-end latency
/// near a single node's delay because all SUnions suspend simultaneously
/// (the first node's silence cuts boundaries for everyone downstream).
#[test]
fn chain_suspends_simultaneously_under_process_mode() {
    let run = |depth| {
        let (mut sys, out) = chain_system(&ChainOptions {
            depth,
            variant: DISTRIBUTED_VARIANTS[1],
            ..Default::default()
        });
        sys.mute_boundaries(StreamId(2), Time::from_secs(10), Time::from_secs(25));
        sys.run_until(Time::from_secs(55));
        sys.metrics.with(out, |m| m.procnew)
    };
    let d1 = run(1);
    let d4 = run(4);
    // Depth 4 must cost far less than 4x the single-node latency (the
    // paper: ~+0.3 s per node, not +D per node).
    assert!(
        d4 < Duration::from_micros(d1.as_micros() * 2),
        "depth-4 latency {d4} should be < 2x depth-1 latency {d1}"
    );
}

/// §6.2's consistency result: with Delay & Delay and a short failure,
/// deeper chains produce FEWER tentative tuples (the delay accumulates
/// along the chain and reconciliation catches the delayed data).
#[test]
fn delaying_reduces_tentative_count_with_depth() {
    let run = |depth| {
        let (mut sys, out) = chain_system(&ChainOptions {
            depth,
            variant: DISTRIBUTED_VARIANTS[0], // Delay & Delay
            ..Default::default()
        });
        sys.mute_boundaries(StreamId(2), Time::from_secs(10), Time::from_secs(15));
        sys.run_until(Time::from_secs(45));
        sys.metrics.with(out, |m| m.n_tentative)
    };
    let shallow = run(1);
    let deep = run(4);
    assert!(
        deep < shallow,
        "delaying should reduce tentative output with depth: depth1={shallow} depth4={deep}"
    );
}

/// §6.3's delay-assignment result: granting every SUnion the full budget
/// masks failures shorter than the budget entirely.
#[test]
fn full_delay_assignment_masks_short_failures() {
    let (mut sys, out) = chain_system(&ChainOptions {
        depth: 4,
        assignment: DelayAssignment::Full {
            effective: Duration::from_secs_f64(6.5),
        },
        variant: DISTRIBUTED_VARIANTS[1],
        ..Default::default()
    });
    sys.mute_boundaries(StreamId(2), Time::from_secs(10), Time::from_secs(15));
    sys.run_until(Time::from_secs(45));
    sys.metrics.with(out, |m| {
        assert_eq!(m.n_tentative, 0, "a 5 s failure must be fully masked");
        assert_eq!(m.dup_stable, 0);
        assert!(m.n_stable > 15000);
    });
}

/// Fine-grained failure advertisement (§8.2): a failure on one diagram
/// branch leaves the other branch's output stream stable — its consumers
/// never see tentative data.
#[test]
fn unaffected_streams_stay_stable() {
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let f1 = q.filter("branch1", s1, Expr::Const(Value::Bool(true)));
    let f2 = q.filter("branch2", s2, Expr::Const(Value::Bool(true)));
    q.output(f1);
    q.output(f2);
    let d = q.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(2),
        ..DpcConfig::default()
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(2), &cfg).unwrap();
    let (s2, f1, f2) = (s2.id(), f1.id(), f2.id());
    let mut sys = SystemBuilder::new(3, Duration::from_millis(1))
        .source(SourceConfig::seq(s1.id(), 100.0))
        .source(SourceConfig::seq(s2, 100.0))
        .plan(p)
        .client_streams(vec![f1, f2])
        .build();
    sys.disconnect_source(s2, 0, Time::from_secs(8), Time::from_secs(14));
    sys.run_until(Time::from_secs(30));
    sys.metrics.with(f1, |m| {
        assert_eq!(m.n_tentative, 0, "branch 1 must be unaffected");
        assert!(m.n_stable > 2500);
    });
    sys.metrics.with(f2, |m| {
        assert!(m.n_tentative > 0, "branch 2 must have failed over");
        assert!(m.n_rec_done >= 1);
        assert_eq!(m.dup_stable, 0);
    });
}
